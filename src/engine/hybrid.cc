#include "engine/hybrid.h"

#include <algorithm>
#include <map>
#include <mutex>
#include <optional>

#include "common/coding.h"
#include "common/thread_pool.h"
#include "engine/bitmap_scan.h"
#include "engine/scan_util.h"

namespace decibel {

namespace {

uint64_t HistoryKey(BranchId branch, uint32_t seg) {
  return (static_cast<uint64_t>(branch) << 32) | seg;
}

}  // namespace

// ------------------------------------------------------------ construction

Result<std::unique_ptr<HybridEngine>> HybridEngine::Make(
    const Schema& schema, const EngineOptions& options) {
  std::unique_ptr<HybridEngine> engine(new HybridEngine(schema, options));
  DECIBEL_RETURN_NOT_OK(CreateDir(options.directory));
  DECIBEL_RETURN_NOT_OK(CreateDir(JoinPath(options.directory, "commits")));
  if (!options.checkpoint_tag.empty() || FileExists(engine->MetaPath())) {
    DECIBEL_RETURN_NOT_OK(engine->LoadExisting());
  } else {
    DECIBEL_RETURN_NOT_OK(engine->InitFresh());
  }
  return engine;
}

std::string HybridEngine::MetaPath(const std::string& tag) const {
  const std::string base = JoinPath(options_.directory, "engine.meta");
  return tag.empty() ? base : base + "." + tag;
}

std::string HybridEngine::SegmentPath(uint32_t seg) const {
  return JoinPath(options_.directory, "seg_" + std::to_string(seg) + ".dbhf");
}

std::string HybridEngine::HistoryPath(BranchId branch, uint32_t seg) const {
  return JoinPath(options_.directory,
                  "commits/b" + std::to_string(branch) + "_s" +
                      std::to_string(seg) + ".hist");
}

Result<uint32_t> HybridEngine::NewHeadSegment(BranchId owner) {
  auto segment = std::make_unique<Segment>();
  segment->id = static_cast<uint32_t>(segments_.size());
  segment->owner = owner;
  segment->is_head = true;
  HeapFile::Options hopts;
  hopts.page_size = options_.page_size;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.schema = &schema_;
  hopts.compress_pages = options_.compress_pages;
  DECIBEL_ASSIGN_OR_RETURN(
      segment->file, HeapFile::Create(SegmentPath(segment->id),
                                      schema_.record_size(), hopts, &pool_));
  segment->local.AddBranch(owner);
  const uint32_t id = segment->id;
  segments_.push_back(std::move(segment));
  head_seg_[owner] = id;
  branch_segments_[owner].Set(id);
  MarkDirty(owner, id);
  return id;
}

Status HybridEngine::InitFresh() {
  pk_index_.try_emplace(kMasterBranch);
  branch_segments_.try_emplace(kMasterBranch);
  dirty_.try_emplace(kMasterBranch);
  return NewHeadSegment(kMasterBranch).status();
}

Status HybridEngine::LoadExisting() {
  const std::string& tag = options_.checkpoint_tag;
  DECIBEL_ASSIGN_OR_RETURN(std::string meta, ReadFileToString(MetaPath(tag)));
  Slice input(meta);
  DECIBEL_RETURN_NOT_OK(CheckEngineMetaHeader(&input, "hybrid"));
  Slice schema_blob;
  if (!GetLengthPrefixed(&input, &schema_blob)) {
    return Status::Corruption("hybrid: truncated meta");
  }
  Slice schema_slice = schema_blob;
  DECIBEL_ASSIGN_OR_RETURN(Schema stored, Schema::DecodeFrom(&schema_slice));
  if (!(stored == schema_)) {
    return Status::InvalidArgument("hybrid: schema mismatch on reopen");
  }
  uint64_t num_segments;
  if (!GetVarint64(&input, &num_segments)) {
    return Status::Corruption("hybrid: truncated meta");
  }
  HeapFile::Options hopts;
  hopts.verify_checksums = options_.verify_checksums;
  hopts.schema = &schema_;
  hopts.compress_pages = options_.compress_pages;
  for (uint64_t i = 0; i < num_segments; ++i) {
    auto segment = std::make_unique<Segment>();
    if (!GetVarint32(&input, &segment->id) ||
        !GetVarint32(&input, &segment->owner) || input.empty()) {
      return Status::Corruption("hybrid: truncated segment meta");
    }
    if (segment->id != segments_.size()) {
      return Status::Corruption("hybrid: segment ids not dense");
    }
    segment->is_head = input[0] != 0;
    input.RemovePrefix(1);
    DECIBEL_ASSIGN_OR_RETURN(
        auto local_index, BitmapIndex::DecodeFrom(&input));
    auto* branch_oriented =
        dynamic_cast<BranchOrientedIndex*>(local_index.get());
    if (branch_oriented == nullptr) {
      return Status::Corruption("hybrid: local index wrong orientation");
    }
    segment->local = std::move(*branch_oriented);
    HeapFile::CheckpointState cs;
    uint32_t tail_crc;
    if (!GetVarint64(&input, &cs.num_records) ||
        !GetVarint32(&input, &tail_crc)) {
      return Status::Corruption("hybrid: truncated segment state");
    }
    cs.tail_crc = tail_crc;
    Slice stats_blob;
    if (!GetLengthPrefixed(&input, &stats_blob)) {
      return Status::Corruption("hybrid: truncated segment stats blob");
    }
    if (!tag.empty()) {
      DECIBEL_ASSIGN_OR_RETURN(
          segment->file,
          HeapFile::OpenAtCheckpoint(SegmentPath(segment->id), hopts, &pool_,
                                     cs));
    } else {
      DECIBEL_ASSIGN_OR_RETURN(
          segment->file,
          HeapFile::Open(SegmentPath(segment->id), hopts, &pool_));
    }
    DECIBEL_RETURN_NOT_OK(segment->file->LoadStats(stats_blob));
    DECIBEL_RETURN_NOT_OK(segment->file->EnsureStats());
    segments_.push_back(std::move(segment));
  }
  uint64_t num_heads;
  if (!GetVarint64(&input, &num_heads)) {
    return Status::Corruption("hybrid: truncated head map");
  }
  for (uint64_t i = 0; i < num_heads; ++i) {
    uint32_t branch, seg;
    if (!GetVarint32(&input, &branch) || !GetVarint32(&input, &seg)) {
      return Status::Corruption("hybrid: truncated head entry");
    }
    if (seg >= segments_.size()) {
      return Status::Corruption("hybrid: head points past segments");
    }
    head_seg_[branch] = seg;
  }
  uint64_t num_rows;
  if (!GetVarint64(&input, &num_rows)) {
    return Status::Corruption("hybrid: truncated branch-segment bitmap");
  }
  for (uint64_t i = 0; i < num_rows; ++i) {
    uint32_t branch;
    Bitmap row;
    if (!GetVarint32(&input, &branch) || !Bitmap::DecodeFrom(&input, &row)) {
      return Status::Corruption("hybrid: truncated bitmap row");
    }
    if (row.size() > segments_.size()) {
      return Status::Corruption("hybrid: bitmap row points past segments");
    }
    branch_segments_[branch] = std::move(row);
    pk_index_.try_emplace(branch);
    dirty_.try_emplace(branch);
  }
  uint64_t num_commits;
  if (!GetVarint64(&input, &num_commits)) {
    return Status::Corruption("hybrid: truncated commit registry");
  }
  for (uint64_t i = 0; i < num_commits; ++i) {
    uint64_t commit;
    uint32_t branch;
    if (!GetVarint64(&input, &commit) || !GetVarint32(&input, &branch)) {
      return Status::Corruption("hybrid: truncated commit entry");
    }
    commit_branch_[commit] = branch;
  }
  uint64_t num_hist;
  if (!GetVarint64(&input, &num_hist)) {
    return Status::Corruption("hybrid: truncated history registry");
  }
  for (uint64_t i = 0; i < num_hist; ++i) {
    uint32_t branch, seg;
    uint64_t bytes;
    if (!GetVarint32(&input, &branch) || !GetVarint32(&input, &seg) ||
        !GetVarint64(&input, &bytes)) {
      return Status::Corruption("hybrid: truncated history entry");
    }
    if (seg >= segments_.size()) {
      return Status::Corruption("hybrid: history points past segments");
    }
    history_segs_[branch].push_back(seg);
    // History files open lazily (HistoryFor); cut post-checkpoint records
    // away now so whoever opens one first parses the checkpointed state.
    if (!tag.empty()) {
      DECIBEL_RETURN_NOT_OK(TruncateFile(HistoryPath(branch, seg), bytes));
    }
  }
  // The pk indexes are memory-only; rebuild them from the local bitmaps.
  for (const auto& [branch, row] : branch_segments_) {
    DECIBEL_RETURN_NOT_OK(RebuildPkIndex(branch));
  }
  return Status::OK();
}

std::string HybridEngine::EncodeMeta() {
  std::string meta;
  PutEngineMetaHeader(&meta);
  std::string schema_blob;
  schema_.EncodeTo(&schema_blob);
  PutLengthPrefixed(&meta, schema_blob);
  PutVarint64(&meta, segments_.size());
  for (const auto& segment : segments_) {
    PutVarint32(&meta, segment->id);
    PutVarint32(&meta, segment->owner);
    meta.push_back(segment->is_head ? 1 : 0);
    segment->local.EncodeTo(&meta);
    const HeapFile::CheckpointState cs = segment->file->GetCheckpointState();
    PutVarint64(&meta, cs.num_records);
    PutVarint32(&meta, cs.tail_crc);
    std::string stats_blob;
    segment->file->EncodeStats(&stats_blob);
    PutLengthPrefixed(&meta, stats_blob);
  }
  PutVarint64(&meta, head_seg_.size());
  for (const auto& [branch, seg] : head_seg_) {
    PutVarint32(&meta, branch);
    PutVarint32(&meta, seg);
  }
  PutVarint64(&meta, branch_segments_.size());
  for (const auto& [branch, row] : branch_segments_) {
    PutVarint32(&meta, branch);
    row.EncodeTo(&meta);
  }
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    PutVarint64(&meta, commit_branch_.size());
    for (const auto& [commit, branch] : commit_branch_) {
      PutVarint64(&meta, commit);
      PutVarint32(&meta, branch);
    }
    uint64_t hist_entries = 0;
    for (const auto& [branch, segs] : history_segs_) {
      hist_entries += segs.size();
    }
    PutVarint64(&meta, hist_entries);
    for (const auto& [branch, segs] : history_segs_) {
      for (uint32_t seg : segs) {
        PutVarint32(&meta, branch);
        PutVarint32(&meta, seg);
        // Lazily-opened histories may not be in histories_; their on-disk
        // size is still the truth (records are flushed as written).
        auto it = histories_.find(HistoryKey(branch, seg));
        uint64_t bytes = 0;
        if (it != histories_.end()) {
          bytes = it->second->SizeBytes();
        } else {
          Result<uint64_t> sz = FileSize(HistoryPath(branch, seg));
          if (sz.ok()) bytes = sz.value();
        }
        PutVarint64(&meta, bytes);
      }
    }
  }
  return meta;
}

Status HybridEngine::ReleaseBranch(BranchId branch) {
  // A retired branch's head segment never appends again and its history
  // files never grow past their final commit, so close their descriptors.
  // Registry entries stay: the data remains readable (handles reopen
  // lazily) and the meta encoding is unchanged.
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    if (segment->owner != branch) continue;
    DECIBEL_RETURN_NOT_OK(segment->file->ReleaseFileHandles());
  }
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  for (auto& [key, history] : histories_) {
    if (static_cast<BranchId>(key >> 32) != branch) continue;
    DECIBEL_RETURN_NOT_OK(history->ReleaseFileHandles());
  }
  return Status::OK();
}

Status HybridEngine::Flush() {
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    DECIBEL_RETURN_NOT_OK(segment->file->Flush());
  }
  return WriteStringToFile(MetaPath(), EncodeMeta());
}

Status HybridEngine::Checkpoint(const std::string& tag, bool sync) {
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  for (auto& segment : segments_) {
    DECIBEL_RETURN_NOT_OK(sync ? segment->file->Sync()
                               : segment->file->Flush());
  }
  if (sync) {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    for (auto& [key, history] : histories_) {
      DECIBEL_RETURN_NOT_OK(history->Sync());
    }
  }
  return AtomicWriteFile(MetaPath(tag), EncodeMeta(), sync);
}

Status HybridEngine::RemoveCheckpoint(const std::string& tag) {
  return RemoveFile(MetaPath(tag));
}

// --------------------------------------------------------- version control

std::vector<uint32_t> HybridEngine::SegmentsOf(BranchId b) const {
  std::vector<uint32_t> out;
  auto it = branch_segments_.find(b);
  if (it == branch_segments_.end()) return out;
  it->second.ForEachSet(
      [&](uint64_t seg) { out.push_back(static_cast<uint32_t>(seg)); });
  return out;
}

Result<CommitHistory*> HybridEngine::HistoryFor(BranchId branch,
                                                uint32_t seg) {
  // Held across the (rare) first open of a history file: concurrent
  // readers of the same commit would otherwise race to create one.
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  const uint64_t key = HistoryKey(branch, seg);
  auto it = histories_.find(key);
  if (it != histories_.end()) return it->second.get();
  const std::string path = HistoryPath(branch, seg);
  // The registry (restored from the meta on reopen) is authoritative: a
  // history file on disk for a (branch, seg) the registry does not know
  // is stale post-checkpoint debris from a crash, and Create truncates
  // it away (WAL replay re-appends its commits).
  auto segs_it = history_segs_.find(branch);
  const bool known =
      segs_it != history_segs_.end() &&
      std::find(segs_it->second.begin(), segs_it->second.end(), seg) !=
          segs_it->second.end();
  Result<std::unique_ptr<CommitHistory>> h =
      known ? CommitHistory::Open(
                  path, {.composite_every = options_.composite_every})
            : CommitHistory::Create(
                  path, {.composite_every = options_.composite_every});
  if (!h.ok()) return h.status();
  CommitHistory* raw = h.value().get();
  histories_.emplace(key, std::move(h).MoveValueUnsafe());
  if (!known) history_segs_[branch].push_back(seg);
  return raw;
}

Status HybridEngine::CreateBranch(BranchId child, BranchId parent,
                                  CommitId base_commit, bool at_head) {
  // Grows segments_, the branch maps, and local-index column sets.
  std::unique_lock<std::shared_mutex> registry_lock(registry_mu_);
  pk_index_.try_emplace(child);
  branch_segments_.try_emplace(child);
  dirty_.try_emplace(child);
  if (at_head) {
    // §3.4 Branch: the parent's head freezes into an internal segment
    // whose bitmap gains a column for the child; both branches get fresh
    // head segments. The clone touches only segments in the direct
    // ancestry, not a global bitmap.
    const uint32_t old_head = head_seg_[parent];
    segments_[old_head]->is_head = false;
    DECIBEL_RETURN_NOT_OK(segments_[old_head]->file->Seal());
    for (uint32_t seg : SegmentsOf(parent)) {
      segments_[seg]->local.CloneBranch(parent, child);
      branch_segments_[child].Set(seg);
      MarkDirty(child, seg);
    }
    pk_index_[child] = pk_index_[parent];
    DECIBEL_RETURN_NOT_OK(NewHeadSegment(parent).status());
    DECIBEL_RETURN_NOT_OK(NewHeadSegment(child).status());
    // Only a branch's current head is ever dirtied, so the parent's
    // history for the old head will never be appended again (the facade
    // auto-committed any dirty state before branching). Close its
    // descriptors — under fork churn one held writer per rolled head
    // otherwise accumulates without bound. Reads (and any append, should
    // the assumption ever break) lazily reopen.
    {
      std::lock_guard<std::mutex> commit_lock(commit_mu_);
      auto hist_it = histories_.find(HistoryKey(parent, old_head));
      if (hist_it != histories_.end()) {
        DECIBEL_RETURN_NOT_OK(hist_it->second->ReleaseFileHandles());
      }
    }
    return Status::OK();
  }
  // Branch from a historical commit: restore the parent's per-segment
  // columns as of that commit into the child's columns.
  std::vector<std::pair<uint32_t, Bitmap>> columns;
  DECIBEL_RETURN_NOT_OK(CommitColumns(base_commit, &columns));
  for (auto& [seg, bits] : columns) {
    if (!bits.Any()) continue;
    segments_[seg]->local.AddBranch(child);
    segments_[seg]->local.RestoreBranch(child, bits);
    branch_segments_[child].Set(seg);
    MarkDirty(child, seg);
  }
  DECIBEL_RETURN_NOT_OK(NewHeadSegment(child).status());
  return RebuildPkIndex(child);
}

Status HybridEngine::Commit(BranchId branch, CommitId commit_id) {
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  // The stripe pins the branch's columns and dirty set while they are
  // snapshotted into the history files.
  std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
  return CommitImpl(branch, commit_id);
}

Status HybridEngine::CommitImpl(BranchId branch, CommitId commit_id) {
  auto dirty_it = dirty_.find(branch);
  if (dirty_it != dirty_.end()) {
    // Deterministic order keeps history files reproducible.
    std::vector<uint32_t> segs(dirty_it->second.begin(),
                               dirty_it->second.end());
    std::sort(segs.begin(), segs.end());
    const auto head_it = head_seg_.find(branch);
    for (uint32_t seg : segs) {
      DECIBEL_ASSIGN_OR_RETURN(CommitHistory * history,
                               HistoryFor(branch, seg));
      const Bitmap* view = segments_[seg]->local.BranchView(branch);
      Bitmap empty;
      DECIBEL_RETURN_NOT_OK(
          history->AppendCommit(commit_id, view ? *view : empty));
      // A segment that is no longer this branch's head can never be
      // dirtied by it again, so this append was the history's last:
      // close its descriptors rather than pinning one writer per rolled
      // head forever (reads reopen transiently).
      if (head_it == head_seg_.end() || seg != head_it->second) {
        DECIBEL_RETURN_NOT_OK(history->ReleaseFileHandles());
      }
    }
    dirty_it->second.clear();
  }
  std::lock_guard<std::mutex> commit_lock(commit_mu_);
  commit_branch_[commit_id] = branch;
  return Status::OK();
}

Status HybridEngine::CommitColumns(
    CommitId commit, std::vector<std::pair<uint32_t, Bitmap>>* out) {
  // Snapshot the registry entries under the leaf lock, then replay the
  // history files outside it (each file has its own internal lock).
  BranchId branch;
  std::vector<uint32_t> segs;
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    auto it = commit_branch_.find(commit);
    if (it == commit_branch_.end()) {
      return Status::NotFound("hybrid: unknown commit " +
                              std::to_string(commit));
    }
    branch = it->second;
    auto segs_it = history_segs_.find(branch);
    if (segs_it == history_segs_.end()) return Status::OK();
    segs = segs_it->second;
  }
  for (uint32_t seg : segs) {
    DECIBEL_ASSIGN_OR_RETURN(CommitHistory * history, HistoryFor(branch, seg));
    if (!history->HasCommitAtOrBefore(commit)) continue;  // not yet member
    DECIBEL_ASSIGN_OR_RETURN(Bitmap bits, history->Checkout(commit));
    out->emplace_back(seg, std::move(bits));
  }
  return Status::OK();
}

Status HybridEngine::Checkout(CommitId commit) {
  std::vector<std::pair<uint32_t, Bitmap>> columns;
  return CommitColumns(commit, &columns);
}

Status HybridEngine::RebuildPkIndex(BranchId b) {
  PkIndex& idx = pk_index_[b];
  idx.clear();
  for (uint32_t seg : SegmentsOf(b)) {
    const Bitmap* view = segments_[seg]->local.BranchView(b);
    if (view == nullptr) continue;
    BitmapScanner scanner(segments_[seg]->file.get(), &schema_, view);
    RecordRef rec;
    uint64_t pos;
    while (scanner.Next(&rec, &pos)) {
      idx[rec.pk()] = Loc{seg, pos};
    }
    DECIBEL_RETURN_NOT_OK(scanner.status());
  }
  return Status::OK();
}

// ----------------------------------------------------------------- mutation

Status HybridEngine::ApplyBatch(BranchId branch, const WriteBatch& batch) {
  // Registry shared (CreateBranch/Merge may not reshape segments_ or the
  // local indexes' column sets under us) + the branch's stripe. Updates
  // and deletes of records inherited from shared ancestor segments flip
  // bits only in *this branch's* column of those segments' local
  // bitmaps, so sibling writers never touch the same bitmap.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
  auto head_it = head_seg_.find(branch);
  if (head_it == head_seg_.end()) {
    return Status::NotFound("hybrid: unknown branch " +
                            std::to_string(branch));
  }
  Segment& head = *segments_[head_it->second];
  PkIndex& pks = pk_index_[branch];
  DECIBEL_RETURN_NOT_OK(ValidateBatchDeletes(
      batch, [&pks](int64_t pk) { return pks.count(pk) != 0; }));

  // One pass over the batch: the record payloads go to the head segment
  // in page-sized chunks, its local bitmap universe grows once, the pk
  // index is pre-sized, and the head segment is marked dirty once rather
  // than per record.
  uint64_t next_idx = 0;
  if (batch.num_appends() > 0) {
    DECIBEL_ASSIGN_OR_RETURN(
        next_idx,
        head.file->AppendBatch(batch.arena(), batch.num_appends()));
  }
  head.local.AppendTuples(batch.num_appends());
  pks.reserve(pks.size() + batch.num_appends());
  for (const WriteBatch::Op& op : batch.ops()) {
    if (op.kind == WriteBatch::OpKind::kDelete) {
      auto old = pks.find(op.pk);
      segments_[old->second.seg]->local.Set(old->second.idx, branch, false);
      MarkDirty(branch, old->second.seg);
      pks.erase(old);
      continue;
    }
    const uint64_t idx = next_idx++;
    auto [it, inserted] =
        pks.try_emplace(batch.RecordAt(op).pk(), Loc{head.id, idx});
    if (!inserted) {
      const Loc old = it->second;
      segments_[old.seg]->local.Set(old.idx, branch, false);
      if (old.seg != head.id) MarkDirty(branch, old.seg);
      it->second = Loc{head.id, idx};
    }
    head.local.Set(idx, branch, true);
  }
  if (batch.num_appends() > 0) MarkDirty(branch, head.id);
  return Status::OK();
}

// ------------------------------------------------------------------ queries

/// Streaming cursor chaining bitmap scans across scan parts. Owns the
/// bitmaps. The pushed-down predicate runs on the in-page record bytes
/// before the per-branch membership probes of multi views.
class HybridEngine::PartsCursor : public ScanCursor {
 public:
  PartsCursor(const HybridEngine* engine, std::vector<ScanPart> parts,
              uint64_t segments_skipped, std::vector<BranchId> branch_list,
              const ScanSpec& spec)
      : engine_(engine),
        parts_(std::move(parts)),
        branch_list_(std::move(branch_list)),
        prepared_(spec.predicate, engine->schema_),
        limit_(spec.limit),
        row_bytes_(ProjectedRowBytes(engine->schema_, spec.projection)) {
    stats_.segments_skipped = segments_skipped;
  }
  ~PartsCursor() override { engine_->scan_counters_.Add(stats_); }

  bool Next(ScanRow* out) override {
    if (limit_ != 0 && stats_.rows_emitted >= limit_) return false;
    for (;;) {
      if (!scanner_.has_value()) {
        if (next_part_ >= parts_.size()) return false;
        scanner_.emplace(parts_[next_part_].file, &engine_->schema_,
                         &parts_[next_part_].unioned);
        scanner_->EnablePruning(&prepared_, &stats_);
      }
      RecordRef rec;
      uint64_t idx;
      if (!scanner_->Next(&rec, &idx)) {
        if (!scanner_->status().ok()) {
          status_ = scanner_->status();
          return false;
        }
        scanner_.reset();
        ++next_part_;
        continue;
      }
      ++stats_.rows_scanned;
      stats_.bytes_scanned += row_bytes_;
      if (!prepared_.Matches(rec.data().data())) continue;
      const ScanPart& part = parts_[next_part_];
      if (!part.cols.empty()) {
        present_.clear();
        for (uint32_t i = 0; i < part.cols.size(); ++i) {
          if (part.cols[i].Test(idx)) present_.push_back(i);
        }
        out->branches = &present_;
      } else {
        out->branches = nullptr;
      }
      out->record = rec;
      ++stats_.rows_emitted;
      return true;
    }
  }

  const Status& status() const override { return status_; }
  const ScanStats& stats() const override { return stats_; }
  const std::vector<BranchId>& branches() const override {
    return branch_list_;
  }

 private:
  const HybridEngine* engine_;
  std::vector<ScanPart> parts_;
  std::vector<BranchId> branch_list_;
  PreparedPredicate prepared_;
  uint64_t limit_;
  uint32_t row_bytes_;
  size_t next_part_ = 0;
  std::optional<BitmapScanner> scanner_;
  std::vector<uint32_t> present_;
  ScanStats stats_;
  Status status_;
};

Result<std::vector<HybridEngine::ScanPart>> HybridEngine::BuildScanParts(
    const ScanSpec& spec, uint64_t* segments_skipped) {
  // Live-branch views materialize their bitmap copies under the branch's
  // stripe lock, so a snapshot always lands on a batch boundary; every
  // part also captures its segment's file pointer so the cursor streams
  // without re-reading segments_.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  std::vector<ScanPart> parts;
  switch (spec.view) {
    case ScanView::kBranch: {
      if (head_seg_.count(spec.branch) == 0) {
        return Status::NotFound("hybrid: unknown branch " +
                                std::to_string(spec.branch));
      }
      // "Single branch scans check the branch-segment index to identify
      // the segments that need to be read" (§3.4); order is irrelevant.
      std::lock_guard<std::mutex> stripe_lock(
          stripes_.ForBranch(spec.branch));
      for (uint32_t seg : SegmentsOf(spec.branch)) {
        ScanPart part;
        part.seg = seg;
        part.file = segments_[seg]->file.get();
        part.unioned = segments_[seg]->local.MaterializeBranch(spec.branch);
        parts.push_back(std::move(part));
      }
      break;
    }
    case ScanView::kCommit: {
      std::vector<std::pair<uint32_t, Bitmap>> columns;
      DECIBEL_RETURN_NOT_OK(CommitColumns(spec.commit, &columns));
      for (auto& [seg, bits] : columns) {
        ScanPart part;
        part.seg = seg;
        part.file = segments_[seg]->file.get();
        part.unioned = std::move(bits);
        parts.push_back(std::move(part));
      }
      break;
    }
    case ScanView::kMulti: {
      // Segments relevant to any requested branch: a logical OR of rows
      // of the branch-segment bitmap (§3.4).
      StripeLocks::MultiGuard stripe_locks(stripes_, spec.branches);
      Bitmap segs;
      for (BranchId b : spec.branches) {
        auto it = branch_segments_.find(b);
        if (it != branch_segments_.end()) segs.OrWith(it->second);
      }
      segs.ForEachSet([&](uint64_t seg) {
        ScanPart part;
        part.seg = static_cast<uint32_t>(seg);
        part.file = segments_[seg]->file.get();
        part.cols.resize(spec.branches.size());
        for (size_t i = 0; i < spec.branches.size(); ++i) {
          part.cols[i] =
              segments_[seg]->local.MaterializeBranch(spec.branches[i]);
          part.unioned.OrWith(part.cols[i]);
        }
        parts.push_back(std::move(part));
      });
      break;
    }
    default:
      return Status::InvalidArgument("hybrid: unsupported scan view");
  }
  // Whole-segment skipping off the file-level zone (§3.4's segment index
  // extended with statistics): a segment whose zone rules the predicate
  // out cannot contribute a matching row, whatever the bitmaps selected.
  // File zones only grow (they are supersets of any earlier snapshot the
  // bitmaps were built against), so the test is safe lock-free here.
  if (!spec.predicate.empty()) {
    const PreparedPredicate prepared(spec.predicate, schema_);
    std::vector<ScanPart> kept;
    kept.reserve(parts.size());
    for (ScanPart& part : parts) {
      if (part.file->FileMayMatch(prepared)) {
        kept.push_back(std::move(part));
      } else if (segments_skipped != nullptr) {
        ++*segments_skipped;
      }
    }
    parts = std::move(kept);
  }
  return parts;
}

Result<std::unique_ptr<ScanCursor>> HybridEngine::ParallelScan(
    std::vector<ScanPart> parts, uint64_t segments_skipped,
    const ScanSpec& spec, int threads) {
  // §3.4: the branch-segment bitmap "allows for parallelization of
  // segment scanning". Workers filter and project inside the scan, so
  // only matching rows are copied out of the pages; the cursor then
  // drains the materialized result. The whole filtered result set is
  // held in memory — the price of lock-free workers; callers scanning
  // huge low-selectivity views without a limit should prefer the
  // streaming sequential path (parallelism <= 1).
  struct PartResult {
    std::vector<std::string> rows;
    std::vector<std::vector<uint32_t>> annotations;
    ScanStats stats;
    Status status;
  };
  std::vector<PartResult> results(parts.size());
  const PreparedPredicate prepared(spec.predicate, schema_);
  const uint32_t row_bytes = ProjectedRowBytes(schema_, spec.projection);
  {
    ThreadPool pool(static_cast<size_t>(threads));
    for (size_t p = 0; p < parts.size(); ++p) {
      pool.Submit([&, p] {
        const ScanPart& part = parts[p];
        PartResult& result = results[p];
        BitmapScanner scanner(part.file, &schema_, &part.unioned);
        scanner.EnablePruning(&prepared, &result.stats);
        RecordRef rec;
        uint64_t idx;
        std::vector<uint32_t> present;
        while (scanner.Next(&rec, &idx)) {
          // Each worker can stop at the global limit: the merge below
          // takes at most spec.limit rows total, so copies past it in
          // any one part can never be emitted.
          if (spec.limit != 0 && result.rows.size() >= spec.limit) break;
          ++result.stats.rows_scanned;
          result.stats.bytes_scanned += row_bytes;
          if (!prepared.Matches(rec.data().data())) continue;
          result.rows.push_back(
              ProjectRecordCopy(schema_, rec.data(), spec.projection));
          if (!part.cols.empty()) {
            present.clear();
            for (uint32_t i = 0; i < part.cols.size(); ++i) {
              if (part.cols[i].Test(idx)) present.push_back(i);
            }
            result.annotations.push_back(present);
          }
        }
        result.status = scanner.status();
      });
    }
    pool.Wait();
  }
  auto cursor = std::make_unique<BufferedCursor>(&schema_, &scan_counters_);
  *cursor->mutable_branch_list() = spec.branches;
  ScanStats* stats = cursor->mutable_stats();
  stats->segments_skipped = segments_skipped;
  for (PartResult& result : results) {
    if (!result.status.ok()) {
      cursor->set_status(result.status);
      break;
    }
    stats->rows_scanned += result.stats.rows_scanned;
    stats->bytes_scanned += result.stats.bytes_scanned;
    stats->bytes_read += result.stats.bytes_read;
    stats->pages_skipped += result.stats.pages_skipped;
    for (size_t i = 0; i < result.rows.size(); ++i) {
      if (spec.limit != 0 && cursor->buffered() >= spec.limit) break;
      if (result.annotations.empty()) {
        cursor->AddOwnedRow(std::move(result.rows[i]));
      } else {
        cursor->AddAnnotatedRow(std::move(result.rows[i]),
                                std::move(result.annotations[i]));
      }
    }
  }
  return std::unique_ptr<ScanCursor>(std::move(cursor));
}

Result<std::unique_ptr<ScanCursor>> HybridEngine::NewScan(
    const ScanSpec& spec) {
  DECIBEL_RETURN_NOT_OK(ValidateScanSpec(spec, schema_));
  if (spec.view == ScanView::kDiff) {
    return MakeDiffScanCursor(this, spec, &scan_counters_);
  }
  uint64_t segments_skipped = 0;
  DECIBEL_ASSIGN_OR_RETURN(std::vector<ScanPart> parts,
                           BuildScanParts(spec, &segments_skipped));
  const int threads =
      spec.parallelism != 0 ? spec.parallelism : options_.scan_threads;
  if (threads > 1 && parts.size() > 1) {
    return ParallelScan(std::move(parts), segments_skipped, spec, threads);
  }
  std::vector<BranchId> branch_list =
      spec.view == ScanView::kMulti ? spec.branches : std::vector<BranchId>();
  return std::unique_ptr<ScanCursor>(
      new PartsCursor(this, std::move(parts), segments_skipped,
                      std::move(branch_list), spec));
}

Result<Record> HybridEngine::Get(BranchId branch, int64_t pk) {
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  Loc loc;
  {
    // The pk index is per-branch state guarded by the branch's stripe.
    std::lock_guard<std::mutex> stripe_lock(stripes_.ForBranch(branch));
    auto branch_it = pk_index_.find(branch);
    if (branch_it == pk_index_.end()) {
      return Status::NotFound("hybrid: unknown branch " +
                              std::to_string(branch));
    }
    auto rec_it = branch_it->second.find(pk);
    if (rec_it == branch_it->second.end()) {
      return Status::NotFound("hybrid: no record with pk " +
                              std::to_string(pk));
    }
    loc = rec_it->second;
  }
  std::string buf;
  DECIBEL_RETURN_NOT_OK(segments_[loc.seg]->file->Get(loc.idx, &buf));
  return Record(&schema_, Slice(buf));
}

Status HybridEngine::Diff(BranchId a, BranchId b, DiffMode mode,
                          const DiffCallback& pos, const DiffCallback& neg) {
  // Materialize both sides' per-segment deltas under the two branches'
  // stripes (ascending order via MultiGuard), then scan the snapshot
  // with the stripes released.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  struct SegDiff {
    HeapFile* file = nullptr;
    Bitmap only_a;
    Bitmap only_b;
    Bitmap both;
  };
  std::vector<SegDiff> seg_diffs;
  {
    StripeLocks::MultiGuard stripe_locks(stripes_, {a, b});
    Bitmap segs;
    for (BranchId x : {a, b}) {
      auto it = branch_segments_.find(x);
      if (it != branch_segments_.end()) segs.OrWith(it->second);
    }
    segs.ForEachSet([&](uint64_t seg) {
      SegDiff d;
      d.file = segments_[seg]->file.get();
      const Bitmap la = segments_[seg]->local.MaterializeBranch(a);
      const Bitmap lb = segments_[seg]->local.MaterializeBranch(b);
      d.only_a = Bitmap::AndNot(la, lb);
      d.only_b = Bitmap::AndNot(lb, la);
      d.both = Bitmap::Or(d.only_a, d.only_b);
      seg_diffs.push_back(std::move(d));
    });
  }

  // By-key mode needs each side's touched keys before emitting.
  std::unordered_set<int64_t> pks_a, pks_b;
  if (mode == DiffMode::kByKey) {
    for (const SegDiff& d : seg_diffs) {
      BitmapScanner scanner(d.file, &schema_, &d.both);
      RecordRef rec;
      uint64_t idx;
      while (scanner.Next(&rec, &idx)) {
        if (d.only_a.Test(idx)) pks_a.insert(rec.pk());
        if (d.only_b.Test(idx)) pks_b.insert(rec.pk());
      }
      DECIBEL_RETURN_NOT_OK(scanner.status());
    }
  }

  for (const SegDiff& d : seg_diffs) {
    BitmapScanner scanner(d.file, &schema_, &d.both);
    RecordRef rec;
    uint64_t idx;
    while (scanner.Next(&rec, &idx)) {
      const bool in_a = d.only_a.Test(idx);
      if (in_a && pos) {
        if (mode == DiffMode::kByContent || pks_b.count(rec.pk()) == 0) {
          pos(rec);
        }
      }
      if (!in_a && neg) {
        if (mode == DiffMode::kByContent || pks_a.count(rec.pk()) == 0) {
          neg(rec);
        }
      }
    }
    DECIBEL_RETURN_NOT_OK(scanner.status());
  }
  return Status::OK();
}

// -------------------------------------------------------------------- merge

Status HybridEngine::MergeWalk(CommitId left, CommitId right, CommitId base,
                               const MergeWalkCallback& cb,
                               MergeWalkStats* stats) {
  // The tuple-first mask algebra run per segment (§3.4): for each segment
  // any of the three commits has columns in, (L⊕B)|(R⊕B) over the local
  // bitmaps covers every live location of every changed key — a commit
  // carries one live location per key *globally* (the pk index invariant),
  // so a key with a location outside every segment's mask has the same
  // location in all three commits and never changed. Columns come from
  // the (branch, segment) commit histories; the history files and record
  // pages are internally synchronized and commit snapshots are immutable,
  // so the walk holds the registry shared only to address segments_.
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  const uint32_t rs = schema_.record_size();

  std::unordered_map<uint32_t, Bitmap> cols_l, cols_r, cols_b;
  auto load = [&](CommitId commit,
                  std::unordered_map<uint32_t, Bitmap>* out) -> Status {
    std::vector<std::pair<uint32_t, Bitmap>> cols;
    DECIBEL_RETURN_NOT_OK(CommitColumns(commit, &cols));
    for (auto& [seg, bits] : cols) (*out)[seg] = std::move(bits);
    return Status::OK();
  };
  DECIBEL_RETURN_NOT_OK(load(left, &cols_l));
  DECIBEL_RETURN_NOT_OK(load(right, &cols_r));
  DECIBEL_RETURN_NOT_OK(load(base, &cols_b));

  std::unordered_set<uint32_t> seg_set;
  for (const auto* cols : {&cols_l, &cols_r, &cols_b}) {
    for (const auto& [seg, bits] : *cols) seg_set.insert(seg);
  }

  constexpr uint64_t kAbsentSeg = ~uint64_t{0};
  struct Positions {
    Loc l{0, 0}, r{0, 0}, b{0, 0};
    uint64_t l_seg = kAbsentSeg, r_seg = kAbsentSeg, b_seg = kAbsentSeg;
  };
  std::map<int64_t, Positions> keys;

  static const Bitmap kEmpty;
  for (uint32_t seg : seg_set) {
    auto view = [&](const std::unordered_map<uint32_t, Bitmap>& cols)
        -> const Bitmap& {
      auto it = cols.find(seg);
      return it == cols.end() ? kEmpty : it->second;
    };
    const Bitmap& bits_l = view(cols_l);
    const Bitmap& bits_r = view(cols_r);
    const Bitmap& bits_b = view(cols_b);
    const Bitmap mask =
        Bitmap::Or(Bitmap::Xor(bits_l, bits_b), Bitmap::Xor(bits_r, bits_b));
    if (!mask.Any()) continue;  // segment untouched between the commits

    BitmapScanner scanner(segments_[seg]->file.get(), &schema_, &mask);
    RecordRef rec;
    uint64_t idx;
    while (scanner.Next(&rec, &idx)) {
      Positions& p = keys[rec.pk()];
      if (bits_l.Test(idx)) {
        p.l = Loc{seg, idx};
        p.l_seg = seg;
      }
      if (bits_r.Test(idx)) {
        p.r = Loc{seg, idx};
        p.r_seg = seg;
      }
      if (bits_b.Test(idx)) {
        p.b = Loc{seg, idx};
        p.b_seg = seg;
      }
      stats->bytes_processed += rs;
    }
    DECIBEL_RETURN_NOT_OK(scanner.status());
  }

  auto fetch = [&](Loc loc, std::string* buf) {
    stats->bytes_processed += rs;
    return segments_[loc.seg]->file->Get(loc.idx, buf);
  };
  auto same = [](uint64_t a_seg, Loc a, uint64_t b_seg, Loc b) {
    return a_seg != kAbsentSeg && b_seg != kAbsentSeg && a.seg == b.seg &&
           a.idx == b.idx;
  };
  std::string buf_l, buf_r, buf_b;
  for (const auto& [pk, pos] : keys) {
    MergeWalkItem item;
    item.pk = pk;
    std::optional<RecordRef> ref_l, ref_r, ref_b;
    if (pos.l_seg != kAbsentSeg) {
      DECIBEL_RETURN_NOT_OK(fetch(pos.l, &buf_l));
      ref_l.emplace(&schema_, Slice(buf_l));
      item.left = &*ref_l;
    }
    if (pos.r_seg != kAbsentSeg) {
      if (same(pos.r_seg, pos.r, pos.l_seg, pos.l)) {
        item.right = item.left;
      } else {
        DECIBEL_RETURN_NOT_OK(fetch(pos.r, &buf_r));
        ref_r.emplace(&schema_, Slice(buf_r));
        item.right = &*ref_r;
      }
    }
    if (pos.b_seg != kAbsentSeg) {
      if (same(pos.b_seg, pos.b, pos.l_seg, pos.l)) {
        item.base = item.left;
      } else if (same(pos.b_seg, pos.b, pos.r_seg, pos.r)) {
        item.base = item.right;
      } else {
        DECIBEL_RETURN_NOT_OK(fetch(pos.b, &buf_b));
        ref_b.emplace(&schema_, Slice(buf_b));
        item.base = &*ref_b;
      }
    }
    ++stats->keys_emitted;
    DECIBEL_RETURN_NOT_OK(cb(item));
  }
  return Status::OK();
}

// -------------------------------------------------------------------- stats

EngineStats HybridEngine::Stats() const {
  EngineStats stats;
  std::shared_lock<std::shared_mutex> registry_lock(registry_mu_);
  {
    // Every stripe: the walk reads all branches' columns and pk indexes.
    StripeLocks::AllGuard stripe_locks(stripes_);
    for (const auto& segment : segments_) {
      stats.data_bytes += segment->file->SizeBytes();
      stats.num_records += segment->file->num_records();
      stats.index_memory_bytes += segment->local.MemoryBytes();
    }
    for (const auto& [branch, row] : branch_segments_) {
      stats.index_memory_bytes += row.MemoryBytes();
    }
    for (const auto& [branch, pks] : pk_index_) {
      stats.index_memory_bytes += pks.size() * 24;
    }
  }
  {
    std::lock_guard<std::mutex> commit_lock(commit_mu_);
    for (const auto& [key, history] : histories_) {
      stats.commit_store_bytes += history->SizeBytes();
    }
  }
  stats.num_segments = segments_.size();
  stats.rows_scanned = scan_counters_.rows();
  stats.bytes_scanned = scan_counters_.bytes();
  stats.bytes_read = scan_counters_.bytes_read();
  stats.segments_skipped = scan_counters_.segments_skipped();
  stats.pages_skipped = scan_counters_.pages_skipped();
  return stats;
}

}  // namespace decibel
