#ifndef DECIBEL_CORE_PUBLISHER_H_
#define DECIBEL_CORE_PUBLISHER_H_

/// \file publisher.h
/// Commit subscriptions: the hub side of the paper's "dataset hub"
/// scenario (§1). Every commit and merge the Decibel facade performs is
/// published as a CommitEvent; listeners subscribe per branch and receive
/// the events asynchronously, in commit order.
///
/// Delivery model:
///  - Publish() only enqueues (its mutex is a leaf — the facade calls it
///    while holding its own graph mutex, so a listener must never be able
///    to re-enter the facade from inside Publish).
///  - A single dispatcher thread drains the queue and invokes listener
///    callbacks, so one slow listener delays later events but two events
///    are never delivered out of order, and listeners never run under any
///    facade lock.
///  - Events published with no subscriber on their branch are dropped at
///    enqueue time; there is no replay. Subscribers see every commit that
///    happens *after* their Subscribe() returns — at-most-once, ordered.
///    (The net server layers this into SUBSCRIBE's "you will see
///    notifications for commits after the acknowledgement" guarantee.)
///
/// The dispatcher thread starts lazily on the first Subscribe, so a
/// library-only Decibel with no subscribers pays one mutex check per
/// commit and nothing else.

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "version/types.h"

namespace decibel {

/// One published commit or merge.
struct CommitEvent {
  BranchId branch = kInvalidBranch;
  std::string branch_name;
  CommitId commit = kInvalidCommit;
  /// Operations captured by this commit: batch ops staged on the branch
  /// since its previous commit (for merges, the resolved merge batch).
  uint64_t records = 0;
  bool merge = false;
};

using CommitListener = std::function<void(const CommitEvent&)>;

class CommitPublisher {
 public:
  CommitPublisher() = default;
  /// Stops the dispatcher after draining already-queued events.
  ~CommitPublisher();

  CommitPublisher(const CommitPublisher&) = delete;
  CommitPublisher& operator=(const CommitPublisher&) = delete;

  /// Registers \p listener for events on \p branch and returns a token
  /// for Unsubscribe. The callback runs on the dispatcher thread; it must
  /// not call back into Subscribe/Unsubscribe/Publish's caller while
  /// holding locks the caller holds during those calls.
  uint64_t Subscribe(BranchId branch, CommitListener listener);

  /// Removes a subscription. After Unsubscribe returns, the listener is
  /// guaranteed not to be *newly* invoked; an in-flight delivery on the
  /// dispatcher thread may still be executing.
  void Unsubscribe(uint64_t token);

  /// Enqueues \p event for delivery to \p event.branch's subscribers.
  /// Cheap and non-blocking; safe to call under facade locks.
  void Publish(CommitEvent event);

  /// Blocks until every event published before the call has been handed
  /// to its listeners (tests and orderly server shutdown).
  void Drain();

  uint64_t num_subscriptions() const;
  /// Events actually enqueued (a branch with no subscribers counts 0).
  uint64_t events_published() const;

 private:
  void DispatchLoop();
  /// Caller holds mu_. Starts the dispatcher if not yet running.
  void EnsureThreadLocked();

  struct Subscription {
    BranchId branch = kInvalidBranch;
    CommitListener listener;
  };

  mutable std::mutex mu_;
  std::condition_variable cv_;        ///< wakes the dispatcher
  std::condition_variable drain_cv_;  ///< wakes Drain waiters
  std::map<uint64_t, Subscription> subs_;
  std::deque<CommitEvent> queue_;
  std::thread dispatcher_;
  uint64_t next_token_ = 1;
  uint64_t published_ = 0;
  bool dispatching_ = false;  ///< an event is being delivered right now
  bool stop_ = false;
};

}  // namespace decibel

#endif  // DECIBEL_CORE_PUBLISHER_H_
