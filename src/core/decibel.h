#ifndef DECIBEL_CORE_DECIBEL_H_
#define DECIBEL_CORE_DECIBEL_H_

/// \file decibel.h
/// The public Decibel API (§2): a branched-versioned relational dataset.
/// The facade owns the version graph, the session registry and the lock
/// manager, and drives one of the three storage engines underneath.
///
/// The API is transaction-centric: mutations are staged into a
/// Transaction's WriteBatch and applied atomically on Commit() under a
/// single branch-granularity exclusive lock (§2.2.3's two-phase locking).
/// Typical flow (see examples/quickstart.cc):
///
///   auto db = Decibel::Open("/tmp/db", schema, {});
///   Session s = db->NewSession();
///   auto txn = db->Begin(&s);              // transaction on master
///   txn->Insert(r1);                       // staged, not yet visible
///   txn->Insert(r2);
///   auto st = txn->Commit();               // atomic under the branch lock
///   if (st.IsAborted()) st = txn->Commit();  // lock timeout: retryable
///   CommitId c1 = *db->Commit(&s);         // version snapshot
///   BranchId dev = *db->Branch("dev", &s); // branch at the snapshot
///   ...
///   db->Merge(master, dev, MergePolicy::kThreeWayLeft);
///
/// Reads are ScanSpec-driven (engine/scan_spec.h): one NewScan entry
/// point serves branch-head, commit, multi-branch and diff views with
/// predicate, projection and limit pushed into the engine scan loops,
/// and Get(branch, pk) is a pk-index point lookup:
///
///   auto cursor = *db->NewScan(ScanSpec::Branch(dev).Where(pred));
///   ScanRow row;
///   while (cursor->Next(&row)) { /* row.record */ }
///   Result<Record> rec = db->Get(dev, /*pk=*/42);
///
/// The per-record methods (Insert/Update/Delete, InsertInto/UpdateIn/
/// DeleteFrom) are thin wrappers that run a one-op transaction; every
/// write reaches the engines through StorageEngine::ApplyBatch.
///
/// Operational semantics follow §2.2.3: updates become visible to other
/// branches only through merges; only committed versions can be checked
/// out; branches can be taken from any commit; concurrent sessions are
/// isolated with branch-granularity two-phase locking. A lock that cannot
/// be granted within the deadlock timeout fails the transaction with
/// Status::Aborted; staged operations are retained, so the retry
/// discipline is: release anything else you hold, back off, and call
/// Commit() again (or Abort() to discard).

#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/publisher.h"
#include "engine/engine.h"
#include "txn/lock_guard.h"
#include "txn/lock_manager.h"
#include "txn/write_batch.h"
#include "version/version_graph.h"
#include "wal/checkpoint.h"
#include "wal/manifest.h"
#include "wal/wal_writer.h"

namespace decibel {

struct DecibelOptions {
  EngineType engine = EngineType::kHybrid;
  uint64_t page_size = 1 << 20;
  uint64_t buffer_pool_bytes = 64 << 20;
  BitmapOrientation orientation = BitmapOrientation::kBranchOriented;
  uint32_t composite_every = 16;
  bool verify_checksums = true;
  int scan_threads = 0;
  /// Branch-lock deadlock timeout: a lock not granted within this window
  /// fails with the retryable Status::Aborted (§2.2.3's 2PL discipline).
  uint32_t lock_timeout_ms = 1000;
  /// Engine write-lock stripes: transactions on branches that hash to
  /// different stripes commit concurrently (see EngineOptions).
  uint32_t write_stripes = 32;
  /// Seal full heap pages through the adaptive columnar page codec
  /// (RLE / dictionary / LZ behind a per-page format tag). Scans stay
  /// byte-identical either way; predicates are evaluated against the
  /// compressed strips before pages are decoded (see EngineOptions).
  bool compress_pages = false;

  // ------------------------------------------------------------ durability
  //
  // Non-empty data_dir (it must equal the Open path) switches on the
  // durability subsystem: every mutation is written to a write-ahead log
  // before it reaches the engine, a background thread periodically
  // checkpoints the engine state and truncates the log, and a versioned
  // manifest records which checkpoint + WAL suffix reconstitute the
  // database. Reopening then replays the WAL tail, so — under kFsync —
  // every acknowledged commit survives even a kill -9 / power loss.
  // Empty data_dir (the default) keeps the historical behavior: engine
  // files are written but there is no log; a crash loses everything
  // since the last Flush().

  /// Durability root; empty disables the WAL subsystem.
  std::string data_dir;
  /// How durable an acknowledged write is (see wal::SyncMode): kNone
  /// buffers in-process, kFlush survives process death, kFsync survives
  /// power loss.
  wal::SyncMode sync_mode = wal::SyncMode::kFlush;
  /// WAL segment rollover threshold.
  uint64_t wal_segment_bytes = 16ull << 20;
  /// WAL bytes between automatic background checkpoints.
  uint64_t checkpoint_interval_bytes = 64ull << 20;
};

/// A user session: the commit/branch the user's operations target
/// (§2.2.3: "A session captures the user's state").
class Session {
 public:
  uint64_t id() const { return id_; }
  /// The branch this session writes to / reads from.
  BranchId branch() const { return branch_; }
  /// When set (by Checkout of a historical commit), reads serve this
  /// commit instead of the branch head.
  CommitId checked_out() const { return checked_out_; }
  bool at_head() const { return checked_out_ == kInvalidCommit; }

 private:
  friend class Decibel;
  uint64_t id_ = 0;
  BranchId branch_ = kMasterBranch;
  CommitId checked_out_ = kInvalidCommit;
};

struct MergeInfo {
  CommitId commit = kInvalidCommit;
  MergeResult result;
};

/// One aggregated view of the whole database: the engine's physical
/// numbers, the version graph's logical ones, and the durability
/// subsystem's WAL/checkpoint progress. Served by Decibel::Stats() and —
/// over the wire — by the VQuel INFO statement (the server's health
/// endpoint).
struct DecibelStats {
  EngineStats engine;
  uint64_t branches = 0;
  uint64_t active_branches = 0;
  uint64_t commits = 0;
  bool durable = false;
  /// WAL frame bytes appended over this process's writer lifetime.
  uint64_t wal_bytes_appended = 0;
  /// Current WAL segment sequence number (segments created so far).
  uint64_t wal_segment_seq = 0;
  uint64_t wal_last_lsn = 0;
  uint64_t checkpoint_generation = 0;
  /// Commit-subscription counters (core/publisher.h).
  uint64_t subscriptions = 0;
  uint64_t events_published = 0;
};

class Decibel;

/// A unit of atomic mutation against one branch, obtained from
/// Decibel::Begin. Operations stage into a WriteBatch — invisible to
/// every reader — until Commit() applies them in one engine pass under
/// the branch's exclusive lock. Abort() (or destruction of an
/// uncommitted transaction) discards the staged operations.
///
/// Commit() returning Status::Aborted means the branch lock could not be
/// granted within the deadlock timeout. The staged batch is retained:
/// back off and call Commit() again, or Abort() to give up. Any other
/// error ends the transaction.
///
/// A Transaction is movable, single-threaded, and must not outlive its
/// Decibel.
class Transaction {
 public:
  ~Transaction();
  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;
  Transaction(Transaction&& other) noexcept;
  Transaction& operator=(Transaction&& other) = delete;

  BranchId branch() const { return branch_; }
  /// Unique transaction id; doubles as its lock-owner id.
  uint64_t id() const { return id_; }
  /// True until Commit() succeeds, Abort() runs, or Commit() fails with
  /// a non-retryable error.
  bool active() const { return active_; }
  /// Number of staged operations.
  size_t staged() const { return batch_.size(); }

  Status Insert(const Record& record);
  Status Update(const Record& record);
  Status Delete(int64_t pk);

  /// Direct access to the staged batch, for bulk loading (e.g. calling
  /// WriteBatch::Reserve before a large load).
  WriteBatch* batch() { return &batch_; }

  /// Applies every staged operation atomically under the branch's
  /// exclusive lock and marks the branch dirty. OK empties the
  /// transaction; Status::Aborted (lock timeout) keeps the staged batch
  /// for a retry; other errors end the transaction.
  Status Commit();

  /// Discards the staged operations and ends the transaction. OK on a
  /// transaction that already ended.
  Status Abort();

 private:
  friend class Decibel;
  Transaction(Decibel* db, BranchId branch, uint64_t id,
              const Schema* schema)
      : db_(db), branch_(branch), id_(id), batch_(schema) {}

  Status CheckActive() const;

  Decibel* db_;
  BranchId branch_;
  uint64_t id_;
  WriteBatch batch_;
  bool active_ = true;
};

class Decibel {
 public:
  /// Opens (or initializes) a Decibel database at \p path. A fresh
  /// database is Init-ed with a master branch holding \p schema (§2.2.3).
  static Result<std::unique_ptr<Decibel>> Open(const std::string& path,
                                               const Schema& schema,
                                               const DecibelOptions& options);

  /// Reopens a durable database without knowing its schema: the schema
  /// and engine type are restored from the manifest at \p data_dir, the
  /// engines from the last checkpoint, and the WAL tail is replayed.
  /// NotFound when no manifest exists there.
  static Result<std::unique_ptr<Decibel>> Open(const std::string& data_dir,
                                               const DecibelOptions& options);

  ~Decibel();

  // ------------------------------------------------------------- sessions

  /// Opens a session positioned at the master head.
  Session NewSession();

  /// Points \p session at the head of \p branch.
  Status Use(Session* session, BranchId branch);
  Status Use(Session* session, const std::string& branch_name);

  /// Checks out a committed version into the session (read-only view,
  /// §2.2.3 Checkout).
  Status Checkout(Session* session, CommitId commit);

  // --------------------------------------------------------- transactions

  /// Begins a transaction on the session's branch. Fails with
  /// InvalidArgument if the session has a historical checkout (writes
  /// must target a branch head).
  Result<Transaction> Begin(Session* session);
  /// Begins a transaction keyed by branch (the bulk-load path).
  Result<Transaction> Begin(BranchId branch);

  // ------------------------------------------------------- version control

  /// Branches \p name off the session's current position. If the session
  /// head has uncommitted changes they are committed first (branching is
  /// always anchored at a commit).
  Result<BranchId> Branch(const std::string& name, Session* session);
  /// Branches \p name off an explicit commit.
  Result<BranchId> BranchAt(const std::string& name, CommitId commit);

  /// Commits the session's branch working state (§2.2.3 Commit). Fails
  /// with InvalidArgument if the session has a historical checkout
  /// ("Commits are not allowed to non-head versions").
  Result<CommitId> Commit(Session* session);
  Result<CommitId> CommitBranch(BranchId branch);

  /// Retires \p branch: it stops appearing in HEADS scans and
  /// ActiveBranches, ending its line of development (§4.1's branch
  /// lifetime). Its commits and data stay readable by id. Master cannot
  /// be retired. The agentic many-branch workload's "delete branch" —
  /// physical storage is shared across branches and is never reclaimed
  /// per-branch.
  Status RetireBranch(BranchId branch);

  /// Merges \p from into \p into; the merge commit becomes the new head
  /// of \p into (§2.2.3 Merge).
  Result<MergeInfo> Merge(BranchId into, BranchId from, MergePolicy policy);

  /// Executes the merge \p spec describes: both heads are committed, the
  /// shared staging machinery reconciles every changed key under the
  /// spec's policy/resolution (engine/merge_spec.h), and the resolution
  /// is applied through the ordinary WriteBatch/ApplyBatch path — atomic,
  /// stripe-lock-ordered and WAL-framed. Staging is pure: any
  /// data-dependent failure (a callback error, a walk error) aborts
  /// before a commit is allocated or a WAL byte is written.
  Result<MergeInfo> Merge(const MergeSpec& spec);

  /// Dry run of \p spec: streams every key the merge would touch —
  /// change kind, conflict/field-merge marking, the three versions and
  /// the resolved state — without mutating anything. The cursor's
  /// stats() carries the same MergeResult Merge would report.
  Result<std::unique_ptr<MergeCursor>> PreviewMerge(const MergeSpec& spec);

  /// Three-way structured diff between two arbitrary commits against
  /// their lowest common ancestor: rows classified kAdd/kDelete/kUpdate
  /// from \p a's point of view, with conflict marking keys both commits
  /// changed since the ancestor.
  Result<std::unique_ptr<MergeCursor>> DiffCommits(CommitId a, CommitId b);

  // ------------------------------------------------------------- mutation

  /// One-op transaction against the session's branch head: stage, lock,
  /// apply, unlock. Group statements with Begin() to amortize the lock
  /// round-trip and the engine pass.
  Status Insert(Session* session, const Record& record);
  Status Update(Session* session, const Record& record);
  Status Delete(Session* session, int64_t pk);

  /// Convenience entry points keyed by branch (the benchmark driver's
  /// path); equivalent to a one-op transaction on \p branch.
  Status InsertInto(BranchId branch, const Record& record);
  Status UpdateIn(BranchId branch, const Record& record);
  Status DeleteFrom(BranchId branch, int64_t pk);

  /// Applies \p batch to \p branch as one anonymous transaction: takes
  /// the branch's exclusive lock, runs the engine's one-pass
  /// ApplyBatch, marks the branch dirty. Every mutation funnels through
  /// here — there is exactly one write path into the engines.
  Status ApplyBatch(BranchId branch, const WriteBatch& batch);

  // -------------------------------------------------------------- queries
  //
  // The read path is ScanSpec-driven (engine/scan_spec.h): describe the
  // view (branch head, commit, multi-branch heads, positive diff) plus
  // predicate / projection / limit, and NewScan returns a cursor with all
  // of it pushed into the engine:
  //
  //   auto cursor = *db->NewScan(ScanSpec::Branch(dev)
  //                                  .Where(*Predicate::Compare(
  //                                      schema, "qty", CompareOp::kLt, 5))
  //                                  .Project({0, 1}));
  //   ScanRow row;
  //   while (cursor->Next(&row)) { ... row.record ... }

  /// Serves \p spec. A ScanView::kHeads spec is resolved to the active
  /// branch heads (Table 1 query 4) before reaching the engine.
  Result<std::unique_ptr<ScanCursor>> NewScan(ScanSpec spec);

  /// Serves the session's current view: the branch head, or — when the
  /// session has a historical Checkout — that commit. \p spec contributes
  /// predicate/projection/limit; its view fields are overwritten.
  Result<std::unique_ptr<ScanCursor>> NewScan(const Session& session,
                                              ScanSpec spec = {});

  /// Point lookup of \p pk in the session's current view (branch head or
  /// checkout). NotFound when the key is not live there.
  Result<Record> Get(const Session& session, int64_t pk);
  /// Point lookup at a branch head: O(1) through the pk index on
  /// tuple-first and hybrid, an early-exit segment walk on version-first.
  Result<Record> Get(BranchId branch, int64_t pk);
  /// Point lookup in a historical commit (a pushed-down pk-equality scan
  /// of the commit view; commits have no pk index).
  Result<Record> GetAt(CommitId commit, int64_t pk);

  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg);

  // ------------------------------------------------------------- metadata

  const Schema& schema() const { return schema_; }
  const VersionGraph& graph() const { return graph_; }
  StorageEngine* engine() { return engine_.get(); }
  LockManager* lock_manager() { return &locks_; }
  /// True if \p branch has modifications not yet captured by a commit.
  bool IsDirty(BranchId branch) const;

  // The bare graph() accessor above is unsynchronized — fine for
  // single-threaded callers, but concurrent sessions (the net server,
  // multiple interpreters over one facade) must read branch/commit
  // metadata through these, which take the same lock writers hold
  // while mutating the graph.
  bool HasBranch(BranchId branch) const;
  Result<BranchId> FindBranchByName(const std::string& name) const;
  std::vector<BranchInfo> ListBranches() const;
  CommitId Head(BranchId branch) const;
  Result<CommitInfo> GetCommit(CommitId commit) const;

  /// Every commit and merge is published here; subscribe per branch to
  /// watch it (the net server's SUBSCRIBE). Delivery is asynchronous, in
  /// commit order, covering commits made after Subscribe returns.
  CommitPublisher* publisher() { return &publisher_; }

  /// Aggregated engine + version-graph + WAL/checkpoint statistics.
  DecibelStats Stats() const;

  /// In durable mode, Flush() runs a full checkpoint (CheckpointNow).
  Status Flush();

  /// Quiesces writers, checkpoints the engine under a fresh tag, rolls
  /// the WAL, and publishes a new manifest generation (the previous one
  /// is retained as a fallback; older generations are garbage-collected).
  /// In non-durable mode this is Flush().
  Status CheckpointNow();

  /// True when the durability subsystem (WAL + checkpoints) is active.
  bool durable() const { return wal_ != nullptr; }
  /// Current manifest generation (0 until the first checkpoint).
  uint64_t checkpoint_generation() const;

 private:
  friend class Transaction;

  Decibel(std::string path, Schema schema, DecibelOptions options)
      : path_(std::move(path)),
        schema_(std::move(schema)),
        options_(options),
        locks_(std::chrono::milliseconds(options.lock_timeout_ms)) {}

  /// Persists the graph to graph.bin in non-durable mode. In durable
  /// mode this is a no-op: the WAL record *is* the per-operation
  /// persistence (graph.bin's unsynced rename cannot be trusted after a
  /// power loss), and each checkpoint writes a synced graph.bin.<tag>
  /// copy that recovery starts from.
  Status PersistGraph(bool sync = false);
  /// Encodes the graph (CRC-trailed) and atomically replaces \p path.
  Status PersistGraphTo(const std::string& path, bool sync);
  /// "graph.bin", or the per-checkpoint copy "graph.bin.<tag>".
  std::string GraphPath(const std::string& tag = {}) const;
  std::string WalDir() const;

  // ----------------------------------------------------------- durability
  //
  // Lock order on the write path: LockManager branch locks first, then
  // checkpoint_mu_ (shared for writers — held across {WAL append, engine
  // apply, graph mutate} so a checkpoint sees no half-logged operation —
  // unique for the checkpointer, which never takes branch locks), then
  // mu_, then the engine's internal locks.

  /// Opens the WAL writer (replaying any tail first when \p have_manifest)
  /// and starts the background checkpointer. Called from Open only.
  Status InitDurability(bool have_manifest);
  /// Replays every WAL record past the manifest's checkpoint_lsn, then
  /// truncates the (sole permissible) torn tail. Outputs the next lsn and
  /// the segment seq the writer should continue at.
  Status ReplayWal(uint64_t* next_lsn, uint64_t* next_seg);
  /// Applies one replayed record to the graph + engine, idempotently on
  /// the graph side; deterministic user-level failures (a batch whose
  /// original apply also failed) are skipped, not fatal.
  Status ApplyWalRecord(const wal::FrameView& frame);
  /// Appends + syncs one WAL record per the configured sync mode and
  /// credits the checkpoint scheduler. Caller holds checkpoint_mu_ shared.
  Status LogWal(wal::RecordType type, const std::string& body);
  /// Logs a kBranch record for an already graph-registered child branch.
  /// Caller holds checkpoint_mu_ shared and mu_. No-op when not durable.
  Status LogBranchCreation(BranchId child, const std::string& name,
                           CommitId base, BranchId parent, bool at_head);
  /// Checkpoint body; caller holds checkpoint_mu_ unique and mu_.
  Status CheckpointLocked();
  /// Deletes manifests/engine checkpoints older than \p keep and WAL
  /// segments below its replay window. Best effort.
  void CleanupObsolete(const wal::ManifestData& keep);
  /// Commits \p branch if it has uncommitted changes; returns its head.
  Result<CommitId> EnsureCommitted(BranchId branch);
  Result<CommitId> CommitLocked(BranchId branch);
  /// Rejects writes through a session with a historical checkout.
  Status WriteGuard(const Session& session) const;
  /// Applies \p batch under an already-held exclusive lock on \p branch.
  Status ApplyBatchLocked(BranchId branch, const WriteBatch& batch);
  /// The commit path of a Transaction: exclusive lock owned by the
  /// transaction's id, then ApplyBatchLocked.
  Status CommitTransaction(BranchId branch, uint64_t owner,
                           const WriteBatch& batch);
  /// Unique owner id for a transaction or facade-internal lock scope.
  /// LockManager treats re-acquisition by one owner as a no-op, so every
  /// concurrent lock holder needs its own id.
  uint64_t NextOwnerId();

  const std::string path_;
  const Schema schema_;
  const DecibelOptions options_;

  std::unique_ptr<StorageEngine> engine_;
  VersionGraph graph_;
  LockManager locks_;

  /// Writer/checkpointer barrier; see the durability lock-order note.
  mutable std::shared_mutex checkpoint_mu_;
  std::unique_ptr<wal::Writer> wal_;
  std::unique_ptr<wal::CheckpointScheduler> checkpointer_;
  /// Current manifest generation (guarded by checkpoint_mu_ unique +
  /// mu_ inside CheckpointLocked; read-only elsewhere).
  wal::ManifestData manifest_;

  mutable std::mutex mu_;  // guards graph_, dirty_, id counter
  /// Branches with uncommitted changes → ops staged since their last
  /// commit (the record count carried by commit notifications).
  std::unordered_map<BranchId, uint64_t> dirty_;
  uint64_t next_id_ = 1;

  /// Commit/merge event hub; its own (leaf) mutex, safe under mu_.
  CommitPublisher publisher_;
};

}  // namespace decibel

#endif  // DECIBEL_CORE_DECIBEL_H_
