#ifndef DECIBEL_CORE_DECIBEL_H_
#define DECIBEL_CORE_DECIBEL_H_

/// \file decibel.h
/// The public Decibel API (§2): a branched-versioned relational dataset.
/// The facade owns the version graph, the session registry and the lock
/// manager, and drives one of the three storage engines underneath.
///
/// Typical flow (see examples/quickstart.cc):
///
///   auto db = Decibel::Open("/tmp/db", schema, {});
///   Session& s = db->session();
///   db->Insert(s, record);                 // master working state
///   CommitId c1 = db->Commit(s);           // snapshot
///   BranchId dev = db->Branch("dev", s);   // branch at the snapshot
///   ...
///   db->Merge(master, dev, MergePolicy::kThreeWayLeft);
///
/// Operational semantics follow §2.2.3: updates become visible to other
/// branches only through merges; only committed versions can be checked
/// out; branches can be taken from any commit; concurrent sessions are
/// isolated with branch-granularity two-phase locking.

#include <memory>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

#include "engine/engine.h"
#include "txn/lock_manager.h"
#include "version/version_graph.h"

namespace decibel {

struct DecibelOptions {
  EngineType engine = EngineType::kHybrid;
  uint64_t page_size = 1 << 20;
  uint64_t buffer_pool_bytes = 64 << 20;
  BitmapOrientation orientation = BitmapOrientation::kBranchOriented;
  uint32_t composite_every = 16;
  bool verify_checksums = true;
  int scan_threads = 0;
};

/// A user session: the commit/branch the user's operations target
/// (§2.2.3: "A session captures the user's state").
class Session {
 public:
  uint64_t id() const { return id_; }
  /// The branch this session writes to / reads from.
  BranchId branch() const { return branch_; }
  /// When set (by Checkout of a historical commit), reads serve this
  /// commit instead of the branch head.
  CommitId checked_out() const { return checked_out_; }
  bool at_head() const { return checked_out_ == kInvalidCommit; }

 private:
  friend class Decibel;
  uint64_t id_ = 0;
  BranchId branch_ = kMasterBranch;
  CommitId checked_out_ = kInvalidCommit;
};

struct MergeInfo {
  CommitId commit = kInvalidCommit;
  MergeResult result;
};

class Decibel {
 public:
  /// Opens (or initializes) a Decibel database at \p path. A fresh
  /// database is Init-ed with a master branch holding \p schema (§2.2.3).
  static Result<std::unique_ptr<Decibel>> Open(const std::string& path,
                                               const Schema& schema,
                                               const DecibelOptions& options);

  ~Decibel();

  // ------------------------------------------------------------- sessions

  /// Opens a session positioned at the master head.
  Session NewSession();

  /// Points \p session at the head of \p branch.
  Status Use(Session* session, BranchId branch);
  Status Use(Session* session, const std::string& branch_name);

  /// Checks out a committed version into the session (read-only view,
  /// §2.2.3 Checkout).
  Status Checkout(Session* session, CommitId commit);

  // ------------------------------------------------------- version control

  /// Branches \p name off the session's current position. If the session
  /// head has uncommitted changes they are committed first (branching is
  /// always anchored at a commit).
  Result<BranchId> Branch(const std::string& name, Session* session);
  /// Branches \p name off an explicit commit.
  Result<BranchId> BranchAt(const std::string& name, CommitId commit);

  /// Commits the session's branch working state (§2.2.3 Commit). Fails
  /// with InvalidArgument if the session has a historical checkout
  /// ("Commits are not allowed to non-head versions").
  Result<CommitId> Commit(Session* session);
  Result<CommitId> CommitBranch(BranchId branch);

  /// Merges \p from into \p into; the merge commit becomes the new head
  /// of \p into (§2.2.3 Merge).
  Result<MergeInfo> Merge(BranchId into, BranchId from, MergePolicy policy);

  // ------------------------------------------------------------- mutation

  Status Insert(Session& session, const Record& record);
  Status Update(Session& session, const Record& record);
  Status Delete(Session& session, int64_t pk);

  /// Convenience entry points keyed by branch (the benchmark driver's
  /// path; equivalent to a one-op session).
  Status InsertInto(BranchId branch, const Record& record);
  Status UpdateIn(BranchId branch, const Record& record);
  Status DeleteFrom(BranchId branch, int64_t pk);

  // -------------------------------------------------------------- queries

  /// Scans the session's current view (branch head or checkout).
  Result<std::unique_ptr<RecordIterator>> Scan(const Session& session);
  Result<std::unique_ptr<RecordIterator>> ScanBranch(BranchId branch);
  Result<std::unique_ptr<RecordIterator>> ScanCommit(CommitId commit);

  /// Scans several branches at once, annotating records with the branches
  /// containing them (positions into \p branches).
  Status ScanMulti(const std::vector<BranchId>& branches,
                   const MultiScanCallback& callback);

  /// Scans the heads of all active branches (Table 1 query 4).
  Status ScanHeads(const MultiScanCallback& callback,
                   std::vector<BranchId>* branches_out = nullptr);

  Status Diff(BranchId a, BranchId b, DiffMode mode, const DiffCallback& pos,
              const DiffCallback& neg);

  // ------------------------------------------------------------- metadata

  const Schema& schema() const { return schema_; }
  const VersionGraph& graph() const { return graph_; }
  StorageEngine* engine() { return engine_.get(); }
  LockManager* lock_manager() { return &locks_; }
  /// True if \p branch has modifications not yet captured by a commit.
  bool IsDirty(BranchId branch) const;

  Status Flush();

 private:
  Decibel(std::string path, Schema schema, DecibelOptions options)
      : path_(std::move(path)),
        schema_(std::move(schema)),
        options_(options) {}

  Status PersistGraph();
  std::string GraphPath() const;
  /// Commits \p branch if it has uncommitted changes; returns its head.
  Result<CommitId> EnsureCommitted(BranchId branch);
  Result<CommitId> CommitLocked(BranchId branch);
  /// Resolves the session's read position to a commit or branch head.
  Status WriteGuard(const Session& session) const;

  const std::string path_;
  const Schema schema_;
  const DecibelOptions options_;

  std::unique_ptr<StorageEngine> engine_;
  VersionGraph graph_;
  LockManager locks_;

  mutable std::mutex mu_;  // guards graph_, dirty_, session ids
  std::unordered_set<BranchId> dirty_;
  uint64_t next_session_ = 1;
};

}  // namespace decibel

#endif  // DECIBEL_CORE_DECIBEL_H_
