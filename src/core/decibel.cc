#include "core/decibel.h"

#include <algorithm>
#include <cstdlib>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/io.h"
#include "engine/scan_util.h"
#include "wal/wal_reader.h"

namespace decibel {

// -------------------------------------------------------------- transaction

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      branch_(other.branch_),
      id_(other.id_),
      batch_(std::move(other.batch_)),
      active_(other.active_) {
  other.active_ = false;
}

Transaction::~Transaction() {
  // An uncommitted transaction aborts: staged operations are discarded.
  Abort().ok();
}

Status Transaction::CheckActive() const {
  if (!active_) {
    return Status::InvalidArgument("transaction " + std::to_string(id_) +
                                   " is no longer active");
  }
  return Status::OK();
}

Status Transaction::Insert(const Record& record) {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  batch_.Insert(record);
  return Status::OK();
}

Status Transaction::Update(const Record& record) {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  batch_.Update(record);
  return Status::OK();
}

Status Transaction::Delete(int64_t pk) {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  batch_.Delete(pk);
  return Status::OK();
}

Status Transaction::Commit() {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  const Status applied = db_->CommitTransaction(branch_, id_, batch_);
  if (applied.IsAborted()) {
    // Lock timeout: the batch is retained so the caller can back off and
    // retry Commit(), per the deadlock-timeout discipline.
    return applied;
  }
  batch_.Clear();
  active_ = false;
  return applied;
}

Status Transaction::Abort() {
  if (!active_) return Status::OK();
  batch_.Clear();
  active_ = false;
  return Status::OK();
}

// --------------------------------------------------------------------- open

namespace {

Result<VersionGraph> LoadGraphFile(const std::string& path) {
  DECIBEL_ASSIGN_OR_RETURN(std::string blob, ReadFileToString(path));
  if (blob.size() < sizeof(uint32_t)) {
    return Status::Corruption("version graph file truncated: " + path);
  }
  const uint32_t stored =
      UnmaskCrc(DecodeFixed32(blob.data() + blob.size() - 4));
  blob.resize(blob.size() - 4);
  if (stored != Crc32(blob)) {
    return Status::Corruption("version graph checksum mismatch: " + path);
  }
  return VersionGraph::DecodeFrom(blob);
}

Status ValidateOptions(const std::string& path, const DecibelOptions& o) {
  if (o.write_stripes == 0) {
    return Status::InvalidArgument(
        "DecibelOptions::write_stripes must be > 0");
  }
  if (o.page_size < 512 || o.page_size > (1ull << 31)) {
    return Status::InvalidArgument(
        "DecibelOptions::page_size out of range [512 B, 2 GiB]");
  }
  if (o.wal_segment_bytes == 0) {
    return Status::InvalidArgument(
        "DecibelOptions::wal_segment_bytes must be > 0");
  }
  if (o.checkpoint_interval_bytes == 0) {
    return Status::InvalidArgument(
        "DecibelOptions::checkpoint_interval_bytes must be > 0");
  }
  if (!o.data_dir.empty() && o.data_dir != path) {
    return Status::InvalidArgument(
        "DecibelOptions::data_dir must equal the Open path (" + path + ")");
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<Decibel>> Decibel::Open(const std::string& path,
                                               const Schema& schema,
                                               const DecibelOptions& options) {
  DECIBEL_RETURN_NOT_OK(ValidateOptions(path, options));
  std::unique_ptr<Decibel> db(new Decibel(path, schema, options));
  DECIBEL_RETURN_NOT_OK(CreateDir(path));

  // Durable reopen: the manifest pins the checkpoint the engines restore
  // to and the WAL suffix to replay on top.
  const bool durable = !options.data_dir.empty();
  wal::ManifestData manifest;
  bool have_manifest = false;
  if (durable) {
    auto m = wal::ReadCurrentManifest(path);
    if (m.ok()) {
      manifest = std::move(*m);
      have_manifest = true;
      std::string mine;
      schema.EncodeTo(&mine);
      if (mine != manifest.schema) {
        return Status::InvalidArgument(
            "schema does not match the database at " + path);
      }
      if (manifest.engine != options.engine) {
        return Status::InvalidArgument(
            "engine type does not match the database at " + path +
            " (on disk: " + EngineTypeName(manifest.engine) + ")");
      }
    } else if (!m.status().IsNotFound()) {
      return m.status();
    }
  }

  EngineOptions engine_options;
  engine_options.directory = JoinPath(path, EngineTypeName(options.engine));
  engine_options.page_size = options.page_size;
  engine_options.buffer_pool_bytes = options.buffer_pool_bytes;
  engine_options.orientation = options.orientation;
  engine_options.composite_every = options.composite_every;
  engine_options.verify_checksums = options.verify_checksums;
  engine_options.scan_threads = options.scan_threads;
  engine_options.write_stripes = options.write_stripes;
  engine_options.compress_pages = options.compress_pages;
  if (have_manifest) engine_options.checkpoint_tag = manifest.checkpoint_tag;
  DECIBEL_ASSIGN_OR_RETURN(db->engine_,
                           MakeEngine(options.engine, schema, engine_options));

  if (durable && have_manifest) {
    // Durable recovery never reads the per-commit graph.bin (its
    // write-then-rename is not fsynced, so after a power loss it can be
    // stale or garbage even though the WAL has everything). It starts
    // from the checkpoint's synced graph.bin.<tag> copy — written by the
    // same CheckpointLocked that produced this manifest — and WAL replay
    // rebuilds every newer branch/commit on top.
    DECIBEL_ASSIGN_OR_RETURN(
        db->graph_, LoadGraphFile(db->GraphPath(manifest.checkpoint_tag)));
  } else if (!durable && FileExists(db->GraphPath())) {
    DECIBEL_ASSIGN_OR_RETURN(db->graph_, LoadGraphFile(db->GraphPath()));
  } else {
    if (durable && FileExists(db->GraphPath())) {
      // No manifest means no durable Open ever completed here (the first
      // checkpoint runs inside Open), so nothing was ever acknowledged:
      // discard the leftover graph and start over.
      DECIBEL_RETURN_NOT_OK(RemoveFile(db->GraphPath()));
    }
    // Init (§2.2.3): create the master branch and its initial commit.
    DECIBEL_ASSIGN_OR_RETURN(CommitId init, db->graph_.Init());
    DECIBEL_RETURN_NOT_OK(db->engine_->Commit(kMasterBranch, init));
    DECIBEL_RETURN_NOT_OK(db->PersistGraph());
  }

  if (durable) {
    db->manifest_ = std::move(manifest);
    DECIBEL_RETURN_NOT_OK(db->InitDurability(have_manifest));
  }
  return db;
}

Result<std::unique_ptr<Decibel>> Decibel::Open(const std::string& data_dir,
                                               const DecibelOptions& options) {
  if (!FileExists(data_dir)) {
    return Status::NotFound("no Decibel database at " + data_dir);
  }
  DECIBEL_ASSIGN_OR_RETURN(wal::ManifestData m,
                           wal::ReadCurrentManifest(data_dir));
  Slice schema_in(m.schema);
  DECIBEL_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&schema_in));
  DecibelOptions opts = options;
  opts.data_dir = data_dir;
  opts.engine = m.engine;
  return Open(data_dir, schema, opts);
}

Decibel::~Decibel() {
  // Stop the background checkpointer before tearing anything down, then
  // leave a final checkpoint so the next Open replays an empty tail.
  if (checkpointer_ != nullptr) checkpointer_->Stop();
  if (engine_ == nullptr) return;  // Open failed part-way through
  if (durable()) {
    CheckpointNow().ok();
    wal_->Close().ok();
  } else {
    engine_->Flush().ok();
    PersistGraph().ok();
  }
}

std::string Decibel::GraphPath(const std::string& tag) const {
  const std::string base = JoinPath(path_, "graph.bin");
  return tag.empty() ? base : base + "." + tag;
}

std::string Decibel::WalDir() const { return JoinPath(path_, "wal"); }

Status Decibel::PersistGraph(bool sync) {
  // "this graph is updated and persisted on disk as a part of each branch
  // or commit operation" (§3). In durable mode the WAL record is that
  // persistence — the unsynced graph.bin rename can roll back arbitrarily
  // far under power loss, so recovery only ever reads the per-checkpoint
  // graph.bin.<tag> copies (CheckpointLocked) and this is a no-op.
  if (!options_.data_dir.empty()) return Status::OK();
  return PersistGraphTo(GraphPath(), sync);
}

Status Decibel::PersistGraphTo(const std::string& path, bool sync) {
  std::string blob;
  graph_.EncodeTo(&blob);
  PutFixed32(&blob, MaskCrc(Crc32(blob)));
  return AtomicWriteFile(path, blob, sync);
}

// ------------------------------------------------------------- durability

Status Decibel::InitDurability(bool have_manifest) {
  uint64_t next_lsn = 1;
  uint64_t next_seg = 1;
  if (have_manifest) {
    DECIBEL_RETURN_NOT_OK(ReplayWal(&next_lsn, &next_seg));
  }
  wal::Writer::Options wopts;
  wopts.sync_mode = options_.sync_mode;
  wopts.segment_bytes = options_.wal_segment_bytes;
  DECIBEL_ASSIGN_OR_RETURN(
      wal_, wal::Writer::Open(WalDir(), wopts, next_lsn, next_seg));
  checkpointer_ = std::make_unique<wal::CheckpointScheduler>(
      [this] { return CheckpointNow(); }, options_.checkpoint_interval_bytes);
  // Checkpoint the opened state right away: a fresh database gets its
  // first manifest before Open returns, and a recovered one folds the
  // replayed tail in so repeated crash/reopen cycles cannot grow the WAL
  // without bound.
  DECIBEL_RETURN_NOT_OK(CheckpointNow());
  checkpointer_->Start();
  return Status::OK();
}

Status Decibel::ReplayWal(uint64_t* next_lsn, uint64_t* next_seg) {
  std::vector<uint64_t> seqs;
  if (FileExists(WalDir())) {
    DECIBEL_ASSIGN_OR_RETURN(std::vector<std::string> names, ListDir(WalDir()));
    for (const std::string& name : names) {
      if (name.size() < 5 || name.substr(name.size() - 4) != ".wal") continue;
      const uint64_t seq = std::strtoull(name.c_str(), nullptr, 10);
      if (seq >= manifest_.wal_start_seq) seqs.push_back(seq);
    }
    std::sort(seqs.begin(), seqs.end());
  }
  // A hole anywhere in the live window means acknowledged records are
  // gone: the first live segment must be the one the manifest pinned, and
  // each subsequent one must follow without a gap.
  if (!seqs.empty() && seqs.front() != manifest_.wal_start_seq) {
    return Status::Corruption(
        "first live WAL segment " + std::to_string(manifest_.wal_start_seq) +
        " missing from " + WalDir());
  }
  for (size_t i = 1; i < seqs.size(); ++i) {
    if (seqs[i] != seqs[i - 1] + 1) {
      return Status::Corruption("WAL segment " + std::to_string(seqs[i - 1] + 1) +
                                " missing from " + WalDir());
    }
  }

  uint64_t max_lsn =
      manifest_.next_lsn > 0 ? manifest_.next_lsn - 1 : manifest_.checkpoint_lsn;
  // Lsns are assigned densely, so replay must see checkpoint_lsn + 1,
  // + 2, ... in order; any skip is silent loss of acknowledged records.
  uint64_t expected_lsn = manifest_.checkpoint_lsn + 1;
  for (size_t i = 0; i < seqs.size(); ++i) {
    const std::string path = wal::Writer::SegmentPath(WalDir(), seqs[i]);
    DECIBEL_ASSIGN_OR_RETURN(std::unique_ptr<wal::Reader> reader,
                             wal::Reader::Open(path));
    wal::FrameView frame;
    while (reader->Next(&frame)) {
      if (frame.lsn <= manifest_.checkpoint_lsn) continue;
      if (frame.lsn != expected_lsn) {
        return Status::Corruption(
            "WAL lsn discontinuity in " + path + ": expected " +
            std::to_string(expected_lsn) + ", found " +
            std::to_string(frame.lsn));
      }
      ++expected_lsn;
      DECIBEL_RETURN_NOT_OK(ApplyWalRecord(frame));
      if (frame.lsn > max_lsn) max_lsn = frame.lsn;
    }
    if (reader->torn_tail()) {
      // Only the last segment may end mid-record (the crash point); a torn
      // frame with sealed segments after it means records were lost.
      if (i + 1 != seqs.size()) {
        return Status::Corruption("torn WAL record mid-sequence in " + path);
      }
      DECIBEL_ASSIGN_OR_RETURN(RandomWriteFile f, RandomWriteFile::Open(path));
      DECIBEL_RETURN_NOT_OK(f.Truncate(reader->valid_end()));
      if (options_.sync_mode == wal::SyncMode::kFsync) {
        DECIBEL_RETURN_NOT_OK(f.Sync());
      }
      DECIBEL_RETURN_NOT_OK(f.Close());
    }
  }
  *next_lsn = max_lsn + 1;
  *next_seg = seqs.empty() ? manifest_.wal_start_seq : seqs.back() + 1;
  return Status::OK();
}

Status Decibel::ApplyWalRecord(const wal::FrameView& frame) {
  // Runs single-threaded inside Open. The graph replays idempotently
  // (graph.bin may already be ahead of this record); the engine — rolled
  // back to the checkpoint — has seen nothing past checkpoint_lsn, so it
  // gets every record exactly once. Deterministic user-level failures
  // (a batch whose delete was invalid, a merge that was rejected) failed
  // identically in the original timeline and are skipped, not fatal.
  switch (frame.type) {
    case wal::RecordType::kBatch: {
      WriteBatch batch(&schema_);
      BranchId branch = kInvalidBranch;
      DECIBEL_RETURN_NOT_OK(wal::DecodeBatchBody(frame.body, &branch, &batch));
      const Status applied = engine_->ApplyBatch(branch, batch);
      if (applied.ok()) {
        dirty_[branch] += batch.size();
        return Status::OK();
      }
      if (applied.IsNotFound() || applied.IsInvalidArgument()) {
        return Status::OK();
      }
      return applied;
    }
    case wal::RecordType::kCommit: {
      wal::CommitBody b;
      DECIBEL_RETURN_NOT_OK(wal::DecodeCommitBody(frame.body, &b));
      DECIBEL_RETURN_NOT_OK(graph_.ReplayCommit(b.commit, b.branch, b.parents));
      // Branch/commit records are logged before the engine call, so an
      // engine-side rejection that happened (deterministically) in the
      // original timeline replays as the same rejection — skipping it
      // keeps recovery from failing on every subsequent Open.
      const Status committed = engine_->Commit(b.branch, b.commit);
      if (!committed.ok() && !committed.IsNotFound() &&
          !committed.IsInvalidArgument()) {
        return committed;
      }
      dirty_.erase(b.branch);
      return Status::OK();
    }
    case wal::RecordType::kBranch: {
      wal::BranchBody b;
      DECIBEL_RETURN_NOT_OK(wal::DecodeBranchBody(frame.body, &b));
      DECIBEL_RETURN_NOT_OK(graph_.ReplayBranch(b.child, b.name, b.base,
                                                b.parent_branch, b.head));
      const Status branched = engine_->CreateBranch(b.child, b.parent_branch,
                                                    b.base, b.at_head);
      if (branched.ok() || branched.IsNotFound() ||
          branched.IsInvalidArgument()) {
        return Status::OK();
      }
      return branched;
    }
    case wal::RecordType::kMerge: {
      // The record carries the *resolved* batch: replay re-registers the
      // commit and applies the batch — no merge re-execution, so recovery
      // is deterministic even for callback-resolved merges.
      wal::MergeBody b;
      DECIBEL_RETURN_NOT_OK(wal::DecodeMergeBody(frame.body, &b));
      DECIBEL_RETURN_NOT_OK(graph_.ReplayCommit(b.commit, b.into, b.parents));
      WriteBatch batch(&schema_);
      BranchId branch = kInvalidBranch;
      DECIBEL_RETURN_NOT_OK(
          wal::DecodeBatchBody(Slice(b.batch_body), &branch, &batch));
      Status applied = Status::OK();
      if (batch.size() > 0) applied = engine_->ApplyBatch(branch, batch);
      if (applied.ok()) applied = engine_->Commit(b.into, b.commit);
      if (applied.ok()) {
        dirty_.erase(b.into);
        return Status::OK();
      }
      if (applied.IsNotFound() || applied.IsInvalidArgument()) {
        return Status::OK();
      }
      return applied;
    }
    case wal::RecordType::kRetire: {
      BranchId branch = kInvalidBranch;
      DECIBEL_RETURN_NOT_OK(wal::DecodeRetireBody(frame.body, &branch));
      if (graph_.HasBranch(branch)) graph_.SetActive(branch, false);
      dirty_.erase(branch);
      DECIBEL_RETURN_NOT_OK(engine_->ReleaseBranch(branch));
      return Status::OK();
    }
  }
  return Status::Corruption("unknown WAL record type " +
                            std::to_string(static_cast<int>(frame.type)));
}

Status Decibel::LogWal(wal::RecordType type, const std::string& body) {
  DECIBEL_ASSIGN_OR_RETURN(const uint64_t lsn, wal_->Append(type, body));
  DECIBEL_RETURN_NOT_OK(wal_->Sync(lsn));
  checkpointer_->NotifyBytes(body.size() + wal::kFrameHeaderSize);
  return Status::OK();
}

Status Decibel::CheckpointNow() {
  if (!durable()) return Flush();
  // Quiesce the write path: writers hold checkpoint_mu_ shared across
  // {WAL append, engine apply, graph mutate}, so under the unique lock
  // every logged operation is fully applied and the engines are at an
  // exact record boundary.
  std::unique_lock<std::shared_mutex> barrier(checkpoint_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  return CheckpointLocked();
}

Status Decibel::CheckpointLocked() {
  const uint64_t version = manifest_.version + 1;
  const bool sync = options_.sync_mode == wal::SyncMode::kFsync;

  wal::ManifestData m;
  m.version = version;
  m.checkpoint_tag = wal::CheckpointTag(version);
  m.checkpoint_lsn = wal_->last_lsn();
  // Roll first so the checkpoint owns a whole-segment boundary: segments
  // below the new one hold only records the checkpoint covers, and WAL
  // truncation is pure file deletion.
  DECIBEL_ASSIGN_OR_RETURN(m.wal_start_seq, wal_->Roll());
  m.next_lsn = wal_->next_lsn();
  schema_.EncodeTo(&m.schema);
  m.engine = options_.engine;

  DECIBEL_RETURN_NOT_OK(engine_->Checkpoint(m.checkpoint_tag, sync));
  // The graph copy recovery restores from; tagged per generation so a
  // torn rewrite of one generation never strands the fallback one.
  DECIBEL_RETURN_NOT_OK(
      PersistGraphTo(GraphPath(m.checkpoint_tag), sync));
  DECIBEL_RETURN_NOT_OK(wal::WriteManifest(path_, m, sync));

  const wal::ManifestData prev = manifest_;
  manifest_ = std::move(m);
  // Keep the previous generation (manifest fallback needs its engine
  // checkpoint and WAL suffix); everything older is garbage.
  if (prev.version > 0) CleanupObsolete(prev);
  return Status::OK();
}

void Decibel::CleanupObsolete(const wal::ManifestData& keep) {
  auto listing = ListDir(path_);
  if (listing.ok()) {
    for (const std::string& name : *listing) {
      if (name.rfind("MANIFEST-", 0) != 0) continue;
      const uint64_t v = std::strtoull(name.c_str() + 9, nullptr, 10);
      if (v >= keep.version) continue;
      RemoveFile(JoinPath(path_, name)).ok();
      engine_->RemoveCheckpoint(wal::CheckpointTag(v)).ok();
      RemoveFile(GraphPath(wal::CheckpointTag(v))).ok();
    }
  }
  auto wals = ListDir(WalDir());
  if (wals.ok()) {
    for (const std::string& name : *wals) {
      if (name.size() < 5 || name.substr(name.size() - 4) != ".wal") continue;
      const uint64_t seq = std::strtoull(name.c_str(), nullptr, 10);
      if (seq < keep.wal_start_seq) {
        RemoveFile(JoinPath(WalDir(), name)).ok();
      }
    }
  }
}

uint64_t Decibel::checkpoint_generation() const {
  std::lock_guard<std::mutex> lock(mu_);
  return manifest_.version;
}

// ---------------------------------------------------------------- sessions

uint64_t Decibel::NextOwnerId() {
  std::lock_guard<std::mutex> guard(mu_);
  return next_id_++;
}

Session Decibel::NewSession() {
  Session s;
  s.id_ = NextOwnerId();
  return s;
}

Status Decibel::Use(Session* session, BranchId branch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!graph_.HasBranch(branch)) {
      return Status::NotFound("no branch " + std::to_string(branch));
    }
  }
  session->branch_ = branch;
  session->checked_out_ = kInvalidCommit;
  return Status::OK();
}

Status Decibel::Use(Session* session, const std::string& branch_name) {
  BranchId b;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DECIBEL_ASSIGN_OR_RETURN(b, graph_.FindBranchByName(branch_name));
  }
  return Use(session, b);
}

Status Decibel::Checkout(Session* session, CommitId commit) {
  CommitInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DECIBEL_ASSIGN_OR_RETURN(info, graph_.GetCommit(commit));
  }
  DECIBEL_RETURN_NOT_OK(engine_->Checkout(commit));
  session->branch_ = info.branch;
  session->checked_out_ = commit;
  return Status::OK();
}

// ------------------------------------------------------------- transactions

Result<Transaction> Decibel::Begin(Session* session) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return Begin(session->branch_);
}

Result<Transaction> Decibel::Begin(BranchId branch) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!graph_.HasBranch(branch)) {
      return Status::NotFound("no branch " + std::to_string(branch));
    }
    id = next_id_++;
  }
  return Transaction(this, branch, id, &schema_);
}

// ---------------------------------------------------------- version control

Result<CommitId> Decibel::CommitLocked(BranchId branch) {
  DECIBEL_ASSIGN_OR_RETURN(CommitId commit, graph_.AddCommit(branch));
  if (durable()) {
    // The commit id is graph-assigned, so the record is logged right
    // after allocation and before the engine snapshot — replay re-applies
    // both sides idempotently from the id.
    wal::CommitBody b;
    b.branch = branch;
    b.commit = commit;
    DECIBEL_ASSIGN_OR_RETURN(CommitInfo info, graph_.GetCommit(commit));
    b.parents = std::move(info.parents);
    std::string body;
    wal::EncodeCommitBody(&body, b);
    DECIBEL_RETURN_NOT_OK(LogWal(wal::RecordType::kCommit, body));
  }
  DECIBEL_RETURN_NOT_OK(engine_->Commit(branch, commit));
  uint64_t ops = 0;
  if (auto it = dirty_.find(branch); it != dirty_.end()) {
    ops = it->second;
    dirty_.erase(it);
  }
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  CommitEvent event;
  event.branch = branch;
  if (Result<BranchInfo> info = graph_.GetBranch(branch); info.ok()) {
    event.branch_name = info->name;
  }
  event.commit = commit;
  event.records = ops;
  publisher_.Publish(std::move(event));
  return commit;
}

Result<CommitId> Decibel::EnsureCommitted(BranchId branch) {
  if (dirty_.count(branch) != 0) {
    return CommitLocked(branch);
  }
  return graph_.Head(branch);
}

Result<CommitId> Decibel::Commit(Session* session) {
  if (!session->at_head()) {
    return Status::InvalidArgument(
        "commits are not allowed to non-head versions (§2.2.3)");
  }
  return CommitBranch(session->branch_);
}

Result<CommitId> Decibel::CommitBranch(BranchId branch) {
  DECIBEL_ASSIGN_OR_RETURN(
      LockGuard guard, LockGuard::Acquire(&locks_, NextOwnerId(), branch,
                                          LockMode::kExclusive));
  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) barrier.lock();
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(branch);
}

Result<BranchId> Decibel::Branch(const std::string& name, Session* session) {
  if (!session->at_head()) {
    // Branching from a checkout = branching at that commit.
    return BranchAt(name, session->checked_out_);
  }
  const BranchId parent = session->branch_;
  DECIBEL_ASSIGN_OR_RETURN(
      LockGuard guard, LockGuard::Acquire(&locks_, NextOwnerId(), parent,
                                          LockMode::kExclusive));
  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) barrier.lock();
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_ASSIGN_OR_RETURN(CommitId base, EnsureCommitted(parent));
  DECIBEL_ASSIGN_OR_RETURN(BranchId child, graph_.CreateBranch(name, base));
  DECIBEL_RETURN_NOT_OK(
      LogBranchCreation(child, name, base, parent, /*at_head=*/true));
  DECIBEL_RETURN_NOT_OK(
      engine_->CreateBranch(child, parent, base, /*at_head=*/true));
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  return child;
}

Result<BranchId> Decibel::BranchAt(const std::string& name, CommitId commit) {
  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) barrier.lock();
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_ASSIGN_OR_RETURN(CommitInfo info, graph_.GetCommit(commit));
  const bool at_head =
      graph_.Head(info.branch) == commit && dirty_.count(info.branch) == 0;
  DECIBEL_ASSIGN_OR_RETURN(BranchId child, graph_.CreateBranch(name, commit));
  DECIBEL_RETURN_NOT_OK(
      LogBranchCreation(child, name, commit, info.branch, at_head));
  DECIBEL_RETURN_NOT_OK(
      engine_->CreateBranch(child, info.branch, commit, at_head));
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  return child;
}

Status Decibel::RetireBranch(BranchId branch) {
  if (branch == kMasterBranch) {
    return Status::InvalidArgument("cannot retire master");
  }
  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) barrier.lock();
  std::lock_guard<std::mutex> lock(mu_);
  if (!graph_.HasBranch(branch)) {
    return Status::NotFound("no branch " + std::to_string(branch));
  }
  DECIBEL_ASSIGN_OR_RETURN(BranchInfo info, graph_.GetBranch(branch));
  if (!info.active) {
    return Status::InvalidArgument("branch " + std::to_string(branch) +
                                   " is already retired");
  }
  if (durable()) {
    std::string body;
    wal::EncodeRetireBody(&body, branch);
    DECIBEL_RETURN_NOT_OK(LogWal(wal::RecordType::kRetire, body));
  }
  // Retirement is soft: the branch's commits stay merge-able ancestors
  // and its storage stays shared (§4 — deltas are never reclaimed per
  // branch), but it drops out of ActiveBranches / HEADS scans. Any ops
  // staged but never committed are abandoned with it.
  graph_.SetActive(branch, false);
  dirty_.erase(branch);
  // Drop the file descriptors the branch pinned (head segment, commit
  // histories) — under agentic fork/merge/retire churn the held handles
  // otherwise accumulate until the process hits its descriptor limit.
  DECIBEL_RETURN_NOT_OK(engine_->ReleaseBranch(branch));
  return PersistGraph();
}

Status Decibel::LogBranchCreation(BranchId child, const std::string& name,
                                  CommitId base, BranchId parent,
                                  bool at_head) {
  if (!durable()) return Status::OK();
  wal::BranchBody b;
  b.child = child;
  b.name = name;
  b.base = base;
  b.parent_branch = parent;
  b.at_head = at_head;
  b.head = graph_.Head(child);
  std::string body;
  wal::EncodeBranchBody(&body, b);
  return LogWal(wal::RecordType::kBranch, body);
}

Result<MergeInfo> Decibel::Merge(BranchId into, BranchId from,
                                 MergePolicy policy) {
  return Merge(MergeSpec::Branches(into, from).WithPolicy(policy));
}

Result<MergeInfo> Decibel::Merge(const MergeSpec& spec) {
  // One lock scope for the whole merge: exclusive on the target, shared
  // on the source, released together (strict 2PL's shrink phase).
  LockScope scope(&locks_, NextOwnerId());
  DECIBEL_RETURN_NOT_OK(scope.Lock(spec.into, LockMode::kExclusive));
  DECIBEL_RETURN_NOT_OK(scope.Lock(spec.from, LockMode::kShared));

  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) barrier.lock();
  std::lock_guard<std::mutex> lock(mu_);
  // Both heads must be committed so the lca and the merge commit are
  // well-defined versions.
  DECIBEL_ASSIGN_OR_RETURN(CommitId head_into, EnsureCommitted(spec.into));
  DECIBEL_ASSIGN_OR_RETURN(CommitId head_from, EnsureCommitted(spec.from));
  DECIBEL_ASSIGN_OR_RETURN(CommitId lca, graph_.Lca(head_into, head_from));

  // Stage first. Staging is pure — the walk, the conflict classification
  // and any user callback run here, against committed state, writing
  // nothing — so every data-dependent failure aborts the merge before a
  // commit id is allocated or a WAL byte is written. (The previous
  // ordering registered the graph commit and logged the kMerge record
  // *before* running the engine merge; an engine-side failure then left
  // a phantom commit in the graph and a WAL record that replayed a merge
  // which never happened.)
  MergePlan plan(&schema_);
  StageOptions opts;
  opts.policy = spec.policy;
  opts.resolution = spec.resolution;
  opts.on_conflict = &spec.on_conflict;
  DECIBEL_RETURN_NOT_OK(StageMerge(engine_.get(), schema_, head_into,
                                   head_from, lca, opts, &plan));

  // Execute: graph commit, WAL record (carrying the resolved batch),
  // engine apply through the one write path, engine snapshot.
  DECIBEL_ASSIGN_OR_RETURN(CommitId commit,
                           graph_.AddMergeCommit(spec.into, spec.from));
  if (durable()) {
    wal::MergeBody b;
    b.into = spec.into;
    b.from = spec.from;
    b.lca = lca;
    b.commit = commit;
    b.policy = spec.policy;
    DECIBEL_ASSIGN_OR_RETURN(CommitInfo minfo, graph_.GetCommit(commit));
    b.parents = std::move(minfo.parents);
    wal::EncodeBatchBody(&b.batch_body, spec.into, plan.batch);
    std::string body;
    wal::EncodeMergeBody(&body, b);
    DECIBEL_RETURN_NOT_OK(LogWal(wal::RecordType::kMerge, body));
  }
  if (plan.batch.size() > 0) {
    DECIBEL_RETURN_NOT_OK(engine_->ApplyBatch(spec.into, plan.batch));
  }
  DECIBEL_RETURN_NOT_OK(engine_->Commit(spec.into, commit));
  dirty_.erase(spec.into);
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  CommitEvent event;
  event.branch = spec.into;
  if (Result<BranchInfo> binfo = graph_.GetBranch(spec.into); binfo.ok()) {
    event.branch_name = binfo->name;
  }
  event.commit = commit;
  event.records = plan.batch.size();
  event.merge = true;
  publisher_.Publish(std::move(event));
  MergeInfo info;
  info.commit = commit;
  info.result = plan.result;
  return info;
}

Result<std::unique_ptr<MergeCursor>> Decibel::PreviewMerge(
    const MergeSpec& spec) {
  // Same locks as Merge — EnsureCommitted may have to commit either head
  // — but staging runs with stage_ops off and collect_rows on: nothing
  // is written anywhere, and the per-key rows feed the cursor.
  LockScope scope(&locks_, NextOwnerId());
  DECIBEL_RETURN_NOT_OK(scope.Lock(spec.into, LockMode::kExclusive));
  DECIBEL_RETURN_NOT_OK(scope.Lock(spec.from, LockMode::kShared));

  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) barrier.lock();
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_ASSIGN_OR_RETURN(CommitId head_into, EnsureCommitted(spec.into));
  DECIBEL_ASSIGN_OR_RETURN(CommitId head_from, EnsureCommitted(spec.from));
  DECIBEL_ASSIGN_OR_RETURN(CommitId lca, graph_.Lca(head_into, head_from));

  MergePlan plan(&schema_);
  StageOptions opts;
  opts.policy = spec.policy;
  opts.resolution = spec.resolution;
  opts.on_conflict = &spec.on_conflict;
  opts.collect_rows = true;
  opts.stage_ops = false;
  DECIBEL_RETURN_NOT_OK(StageMerge(engine_.get(), schema_, head_into,
                                   head_from, lca, opts, &plan));
  return MakeMergeCursor(std::move(plan.rows), plan.result);
}

Result<std::unique_ptr<MergeCursor>> Decibel::DiffCommits(CommitId a,
                                                          CommitId b) {
  // Commits are immutable, so the walk itself needs no branch locks;
  // only the ancestor lookup touches the graph.
  CommitId base = kInvalidCommit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto lca = graph_.Lca(a, b);
    if (!lca.ok()) return lca.status();
    base = *lca;
  }
  MergePlan plan(&schema_);
  DECIBEL_RETURN_NOT_OK(StageDiff(engine_.get(), schema_, a, b, base, &plan));
  return MakeMergeCursor(std::move(plan.rows), plan.result);
}

// ----------------------------------------------------------------- mutation

Status Decibel::WriteGuard(const Session& session) const {
  if (!session.at_head()) {
    return Status::InvalidArgument(
        "session has a historical checkout; writes must target a branch "
        "head");
  }
  return Status::OK();
}

Status Decibel::ApplyBatchLocked(BranchId branch, const WriteBatch& batch) {
  // Caller holds the branch's exclusive lock. The checkpoint barrier is
  // shared — batches on different branches log and apply concurrently
  // (the WAL writer group-commits their fsyncs) — and spans both the log
  // append and the engine apply so a checkpoint never captures one
  // without the other.
  std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_,
                                              std::defer_lock);
  if (durable()) {
    barrier.lock();
    std::string body;
    wal::EncodeBatchBody(&body, branch, batch);
    DECIBEL_RETURN_NOT_OK(LogWal(wal::RecordType::kBatch, body));
  }
  DECIBEL_RETURN_NOT_OK(engine_->ApplyBatch(branch, batch));
  std::lock_guard<std::mutex> lock(mu_);
  dirty_[branch] += batch.size();
  return Status::OK();
}

Status Decibel::CommitTransaction(BranchId branch, uint64_t owner,
                                  const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  DECIBEL_ASSIGN_OR_RETURN(
      LockGuard guard,
      LockGuard::Acquire(&locks_, owner, branch, LockMode::kExclusive));
  return ApplyBatchLocked(branch, batch);
}

Status Decibel::ApplyBatch(BranchId branch, const WriteBatch& batch) {
  return CommitTransaction(branch, NextOwnerId(), batch);
}

Status Decibel::Insert(Session* session, const Record& record) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return InsertInto(session->branch_, record);
}

Status Decibel::Update(Session* session, const Record& record) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return UpdateIn(session->branch_, record);
}

Status Decibel::Delete(Session* session, int64_t pk) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return DeleteFrom(session->branch_, pk);
}

Status Decibel::InsertInto(BranchId branch, const Record& record) {
  WriteBatch batch(&schema_);
  batch.Insert(record);
  return ApplyBatch(branch, batch);
}

Status Decibel::UpdateIn(BranchId branch, const Record& record) {
  WriteBatch batch(&schema_);
  batch.Update(record);
  return ApplyBatch(branch, batch);
}

Status Decibel::DeleteFrom(BranchId branch, int64_t pk) {
  WriteBatch batch(&schema_);
  batch.Delete(pk);
  return ApplyBatch(branch, batch);
}

bool Decibel::IsDirty(BranchId branch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_.count(branch) != 0;
}

bool Decibel::HasBranch(BranchId branch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.HasBranch(branch);
}

Result<BranchId> Decibel::FindBranchByName(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.FindBranchByName(name);
}

std::vector<BranchInfo> Decibel::ListBranches() const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.branches();
}

CommitId Decibel::Head(BranchId branch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.Head(branch);
}

Result<CommitInfo> Decibel::GetCommit(CommitId commit) const {
  std::lock_guard<std::mutex> lock(mu_);
  return graph_.GetCommit(commit);
}

DecibelStats Decibel::Stats() const {
  DecibelStats stats;
  stats.engine = engine_->Stats();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.branches = graph_.num_branches();
    stats.active_branches = graph_.ActiveBranches().size();
    stats.commits = graph_.num_commits();
  }
  stats.durable = durable();
  if (stats.durable) {
    // Writer counters and the manifest generation move under
    // checkpoint_mu_ unique; shared is enough for a consistent read.
    std::shared_lock<std::shared_mutex> barrier(checkpoint_mu_);
    stats.wal_bytes_appended = wal_->bytes_appended();
    stats.wal_segment_seq = wal_->segment_seq();
    stats.wal_last_lsn = wal_->last_lsn();
    stats.checkpoint_generation = manifest_.version;
  }
  stats.subscriptions = publisher_.num_subscriptions();
  stats.events_published = publisher_.events_published();
  return stats;
}

// ------------------------------------------------------------------ queries

Result<std::unique_ptr<ScanCursor>> Decibel::NewScan(ScanSpec spec) {
  if (spec.view == ScanView::kHeads) {
    // Resolve "all active branch heads" against the version graph; the
    // engines only understand explicit branch lists.
    std::lock_guard<std::mutex> lock(mu_);
    spec.view = ScanView::kMulti;
    spec.branches = graph_.ActiveBranches();
  }
  return engine_->NewScan(spec);
}

Result<std::unique_ptr<ScanCursor>> Decibel::NewScan(const Session& session,
                                                     ScanSpec spec) {
  // The session decides the view: a historical checkout reads its commit,
  // everything else the branch head (§2.2.3 Checkout is read-only).
  if (session.at_head()) {
    spec.view = ScanView::kBranch;
    spec.branch = session.branch();
  } else {
    spec.view = ScanView::kCommit;
    spec.commit = session.checked_out();
  }
  return NewScan(std::move(spec));
}

Result<Record> Decibel::Get(const Session& session, int64_t pk) {
  if (session.at_head()) return Get(session.branch(), pk);
  return GetAt(session.checked_out(), pk);
}

Result<Record> Decibel::Get(BranchId branch, int64_t pk) {
  return engine_->Get(branch, pk);
}

Result<Record> Decibel::GetAt(CommitId commit, int64_t pk) {
  // Commits have no pk index; a pushed-down pk-equality scan with limit 1
  // is the engine-agnostic lookup (version-first stops at the first
  // version of the key, the bitmap engines pay one filtered pass).
  Comparison by_pk;
  by_pk.column = 0;
  by_pk.op = CompareOp::kEq;
  by_pk.int_value = pk;
  DECIBEL_ASSIGN_OR_RETURN(
      auto cursor, NewScan(ScanSpec::Commit(commit)
                               .Where(Predicate().And(std::move(by_pk)))
                               .WithLimit(1)));
  ScanRow row;
  if (cursor->Next(&row)) return Record(&schema_, row.record.data());
  DECIBEL_RETURN_NOT_OK(cursor->status());
  return Status::NotFound("no record with pk " + std::to_string(pk) +
                          " in commit " + std::to_string(commit));
}

Status Decibel::Diff(BranchId a, BranchId b, DiffMode mode,
                     const DiffCallback& pos, const DiffCallback& neg) {
  return engine_->Diff(a, b, mode, pos, neg);
}

Status Decibel::Flush() {
  // A durable Flush is a checkpoint: it both persists and truncates the
  // log, which is strictly stronger than the legacy meta rewrite.
  if (durable()) return CheckpointNow();
  DECIBEL_RETURN_NOT_OK(engine_->Flush());
  std::lock_guard<std::mutex> lock(mu_);
  return PersistGraph();
}

}  // namespace decibel
