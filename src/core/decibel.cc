#include "core/decibel.h"

#include "common/coding.h"
#include "common/crc32.h"
#include "common/io.h"
#include "engine/scan_util.h"

namespace decibel {

// -------------------------------------------------------------- transaction

Transaction::Transaction(Transaction&& other) noexcept
    : db_(other.db_),
      branch_(other.branch_),
      id_(other.id_),
      batch_(std::move(other.batch_)),
      active_(other.active_) {
  other.active_ = false;
}

Transaction::~Transaction() {
  // An uncommitted transaction aborts: staged operations are discarded.
  Abort().ok();
}

Status Transaction::CheckActive() const {
  if (!active_) {
    return Status::InvalidArgument("transaction " + std::to_string(id_) +
                                   " is no longer active");
  }
  return Status::OK();
}

Status Transaction::Insert(const Record& record) {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  batch_.Insert(record);
  return Status::OK();
}

Status Transaction::Update(const Record& record) {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  batch_.Update(record);
  return Status::OK();
}

Status Transaction::Delete(int64_t pk) {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  batch_.Delete(pk);
  return Status::OK();
}

Status Transaction::Commit() {
  DECIBEL_RETURN_NOT_OK(CheckActive());
  const Status applied = db_->CommitTransaction(branch_, id_, batch_);
  if (applied.IsAborted()) {
    // Lock timeout: the batch is retained so the caller can back off and
    // retry Commit(), per the deadlock-timeout discipline.
    return applied;
  }
  batch_.Clear();
  active_ = false;
  return applied;
}

Status Transaction::Abort() {
  if (!active_) return Status::OK();
  batch_.Clear();
  active_ = false;
  return Status::OK();
}

// --------------------------------------------------------------------- open

Result<std::unique_ptr<Decibel>> Decibel::Open(const std::string& path,
                                               const Schema& schema,
                                               const DecibelOptions& options) {
  std::unique_ptr<Decibel> db(new Decibel(path, schema, options));
  DECIBEL_RETURN_NOT_OK(CreateDir(path));

  EngineOptions engine_options;
  engine_options.directory = JoinPath(path, EngineTypeName(options.engine));
  engine_options.page_size = options.page_size;
  engine_options.buffer_pool_bytes = options.buffer_pool_bytes;
  engine_options.orientation = options.orientation;
  engine_options.composite_every = options.composite_every;
  engine_options.verify_checksums = options.verify_checksums;
  engine_options.scan_threads = options.scan_threads;
  engine_options.write_stripes = options.write_stripes;
  DECIBEL_ASSIGN_OR_RETURN(db->engine_,
                           MakeEngine(options.engine, schema, engine_options));

  if (FileExists(db->GraphPath())) {
    DECIBEL_ASSIGN_OR_RETURN(std::string blob,
                             ReadFileToString(db->GraphPath()));
    if (blob.size() < sizeof(uint32_t)) {
      return Status::Corruption("version graph file truncated");
    }
    const uint32_t stored =
        UnmaskCrc(DecodeFixed32(blob.data() + blob.size() - 4));
    blob.resize(blob.size() - 4);
    if (stored != Crc32(blob)) {
      return Status::Corruption("version graph checksum mismatch");
    }
    DECIBEL_ASSIGN_OR_RETURN(db->graph_, VersionGraph::DecodeFrom(blob));
  } else {
    // Init (§2.2.3): create the master branch and its initial commit.
    DECIBEL_ASSIGN_OR_RETURN(CommitId init, db->graph_.Init());
    DECIBEL_RETURN_NOT_OK(db->engine_->Commit(kMasterBranch, init));
    DECIBEL_RETURN_NOT_OK(db->PersistGraph());
  }
  return db;
}

Decibel::~Decibel() {
  // Best-effort flush; engine_ is null when Open failed part-way through.
  if (engine_ != nullptr) {
    engine_->Flush().ok();
    PersistGraph().ok();
  }
}

std::string Decibel::GraphPath() const {
  return JoinPath(path_, "graph.bin");
}

Status Decibel::PersistGraph() {
  // "this graph is updated and persisted on disk as a part of each branch
  // or commit operation" (§3). Write-then-rename keeps it atomic.
  std::string blob;
  graph_.EncodeTo(&blob);
  PutFixed32(&blob, MaskCrc(Crc32(blob)));
  const std::string tmp = GraphPath() + ".tmp";
  DECIBEL_RETURN_NOT_OK(WriteStringToFile(tmp, blob));
  if (::rename(tmp.c_str(), GraphPath().c_str()) != 0) {
    return Status::IOError("rename " + tmp);
  }
  return Status::OK();
}

// ---------------------------------------------------------------- sessions

uint64_t Decibel::NextOwnerId() {
  std::lock_guard<std::mutex> guard(mu_);
  return next_id_++;
}

Session Decibel::NewSession() {
  Session s;
  s.id_ = NextOwnerId();
  return s;
}

Status Decibel::Use(Session* session, BranchId branch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!graph_.HasBranch(branch)) {
      return Status::NotFound("no branch " + std::to_string(branch));
    }
  }
  session->branch_ = branch;
  session->checked_out_ = kInvalidCommit;
  return Status::OK();
}

Status Decibel::Use(Session* session, const std::string& branch_name) {
  BranchId b;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DECIBEL_ASSIGN_OR_RETURN(b, graph_.FindBranchByName(branch_name));
  }
  return Use(session, b);
}

Status Decibel::Checkout(Session* session, CommitId commit) {
  CommitInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    DECIBEL_ASSIGN_OR_RETURN(info, graph_.GetCommit(commit));
  }
  DECIBEL_RETURN_NOT_OK(engine_->Checkout(commit));
  session->branch_ = info.branch;
  session->checked_out_ = commit;
  return Status::OK();
}

// ------------------------------------------------------------- transactions

Result<Transaction> Decibel::Begin(Session* session) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return Begin(session->branch_);
}

Result<Transaction> Decibel::Begin(BranchId branch) {
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!graph_.HasBranch(branch)) {
      return Status::NotFound("no branch " + std::to_string(branch));
    }
    id = next_id_++;
  }
  return Transaction(this, branch, id, &schema_);
}

// ---------------------------------------------------------- version control

Result<CommitId> Decibel::CommitLocked(BranchId branch) {
  DECIBEL_ASSIGN_OR_RETURN(CommitId commit, graph_.AddCommit(branch));
  DECIBEL_RETURN_NOT_OK(engine_->Commit(branch, commit));
  dirty_.erase(branch);
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  return commit;
}

Result<CommitId> Decibel::EnsureCommitted(BranchId branch) {
  if (dirty_.count(branch) != 0) {
    return CommitLocked(branch);
  }
  return graph_.Head(branch);
}

Result<CommitId> Decibel::Commit(Session* session) {
  if (!session->at_head()) {
    return Status::InvalidArgument(
        "commits are not allowed to non-head versions (§2.2.3)");
  }
  return CommitBranch(session->branch_);
}

Result<CommitId> Decibel::CommitBranch(BranchId branch) {
  DECIBEL_ASSIGN_OR_RETURN(
      LockGuard guard, LockGuard::Acquire(&locks_, NextOwnerId(), branch,
                                          LockMode::kExclusive));
  std::lock_guard<std::mutex> lock(mu_);
  return CommitLocked(branch);
}

Result<BranchId> Decibel::Branch(const std::string& name, Session* session) {
  if (!session->at_head()) {
    // Branching from a checkout = branching at that commit.
    return BranchAt(name, session->checked_out_);
  }
  const BranchId parent = session->branch_;
  DECIBEL_ASSIGN_OR_RETURN(
      LockGuard guard, LockGuard::Acquire(&locks_, NextOwnerId(), parent,
                                          LockMode::kExclusive));
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_ASSIGN_OR_RETURN(CommitId base, EnsureCommitted(parent));
  DECIBEL_ASSIGN_OR_RETURN(BranchId child, graph_.CreateBranch(name, base));
  DECIBEL_RETURN_NOT_OK(
      engine_->CreateBranch(child, parent, base, /*at_head=*/true));
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  return child;
}

Result<BranchId> Decibel::BranchAt(const std::string& name, CommitId commit) {
  std::lock_guard<std::mutex> lock(mu_);
  DECIBEL_ASSIGN_OR_RETURN(CommitInfo info, graph_.GetCommit(commit));
  const bool at_head =
      graph_.Head(info.branch) == commit && dirty_.count(info.branch) == 0;
  DECIBEL_ASSIGN_OR_RETURN(BranchId child, graph_.CreateBranch(name, commit));
  DECIBEL_RETURN_NOT_OK(
      engine_->CreateBranch(child, info.branch, commit, at_head));
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  return child;
}

Result<MergeInfo> Decibel::Merge(BranchId into, BranchId from,
                                 MergePolicy policy) {
  // One lock scope for the whole merge: exclusive on the target, shared
  // on the source, released together (strict 2PL's shrink phase).
  LockScope scope(&locks_, NextOwnerId());
  DECIBEL_RETURN_NOT_OK(scope.Lock(into, LockMode::kExclusive));
  DECIBEL_RETURN_NOT_OK(scope.Lock(from, LockMode::kShared));

  std::lock_guard<std::mutex> lock(mu_);
  // Both heads must be committed so the lca and the merge commit are
  // well-defined versions.
  DECIBEL_ASSIGN_OR_RETURN(CommitId head_into, EnsureCommitted(into));
  DECIBEL_ASSIGN_OR_RETURN(CommitId head_from, EnsureCommitted(from));
  DECIBEL_ASSIGN_OR_RETURN(CommitId lca, graph_.Lca(head_into, head_from));
  DECIBEL_ASSIGN_OR_RETURN(CommitId commit,
                           graph_.AddMergeCommit(into, from));
  auto merged = engine_->Merge(into, from, lca, commit, policy);
  if (!merged.ok()) return merged.status();
  DECIBEL_RETURN_NOT_OK(PersistGraph());
  MergeInfo info;
  info.commit = commit;
  info.result = *merged;
  return info;
}

// ----------------------------------------------------------------- mutation

Status Decibel::WriteGuard(const Session& session) const {
  if (!session.at_head()) {
    return Status::InvalidArgument(
        "session has a historical checkout; writes must target a branch "
        "head");
  }
  return Status::OK();
}

Status Decibel::ApplyBatchLocked(BranchId branch, const WriteBatch& batch) {
  DECIBEL_RETURN_NOT_OK(engine_->ApplyBatch(branch, batch));
  std::lock_guard<std::mutex> lock(mu_);
  dirty_.insert(branch);
  return Status::OK();
}

Status Decibel::CommitTransaction(BranchId branch, uint64_t owner,
                                  const WriteBatch& batch) {
  if (batch.empty()) return Status::OK();
  DECIBEL_ASSIGN_OR_RETURN(
      LockGuard guard,
      LockGuard::Acquire(&locks_, owner, branch, LockMode::kExclusive));
  return ApplyBatchLocked(branch, batch);
}

Status Decibel::ApplyBatch(BranchId branch, const WriteBatch& batch) {
  return CommitTransaction(branch, NextOwnerId(), batch);
}

Status Decibel::Insert(Session* session, const Record& record) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return InsertInto(session->branch_, record);
}

Status Decibel::Update(Session* session, const Record& record) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return UpdateIn(session->branch_, record);
}

Status Decibel::Delete(Session* session, int64_t pk) {
  DECIBEL_RETURN_NOT_OK(WriteGuard(*session));
  return DeleteFrom(session->branch_, pk);
}

Status Decibel::InsertInto(BranchId branch, const Record& record) {
  WriteBatch batch(&schema_);
  batch.Insert(record);
  return ApplyBatch(branch, batch);
}

Status Decibel::UpdateIn(BranchId branch, const Record& record) {
  WriteBatch batch(&schema_);
  batch.Update(record);
  return ApplyBatch(branch, batch);
}

Status Decibel::DeleteFrom(BranchId branch, int64_t pk) {
  WriteBatch batch(&schema_);
  batch.Delete(pk);
  return ApplyBatch(branch, batch);
}

bool Decibel::IsDirty(BranchId branch) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dirty_.count(branch) != 0;
}

// ------------------------------------------------------------------ queries

Result<std::unique_ptr<ScanCursor>> Decibel::NewScan(ScanSpec spec) {
  if (spec.view == ScanView::kHeads) {
    // Resolve "all active branch heads" against the version graph; the
    // engines only understand explicit branch lists.
    std::lock_guard<std::mutex> lock(mu_);
    spec.view = ScanView::kMulti;
    spec.branches = graph_.ActiveBranches();
  }
  return engine_->NewScan(spec);
}

Result<std::unique_ptr<ScanCursor>> Decibel::NewScan(const Session& session,
                                                     ScanSpec spec) {
  // The session decides the view: a historical checkout reads its commit,
  // everything else the branch head (§2.2.3 Checkout is read-only).
  if (session.at_head()) {
    spec.view = ScanView::kBranch;
    spec.branch = session.branch();
  } else {
    spec.view = ScanView::kCommit;
    spec.commit = session.checked_out();
  }
  return NewScan(std::move(spec));
}

Result<Record> Decibel::Get(const Session& session, int64_t pk) {
  if (session.at_head()) return Get(session.branch(), pk);
  return GetAt(session.checked_out(), pk);
}

Result<Record> Decibel::Get(BranchId branch, int64_t pk) {
  return engine_->Get(branch, pk);
}

Result<Record> Decibel::GetAt(CommitId commit, int64_t pk) {
  // Commits have no pk index; a pushed-down pk-equality scan with limit 1
  // is the engine-agnostic lookup (version-first stops at the first
  // version of the key, the bitmap engines pay one filtered pass).
  Comparison by_pk;
  by_pk.column = 0;
  by_pk.op = CompareOp::kEq;
  by_pk.int_value = pk;
  DECIBEL_ASSIGN_OR_RETURN(
      auto cursor, NewScan(ScanSpec::Commit(commit)
                               .Where(Predicate().And(std::move(by_pk)))
                               .WithLimit(1)));
  ScanRow row;
  if (cursor->Next(&row)) return Record(&schema_, row.record.data());
  DECIBEL_RETURN_NOT_OK(cursor->status());
  return Status::NotFound("no record with pk " + std::to_string(pk) +
                          " in commit " + std::to_string(commit));
}

Status Decibel::Diff(BranchId a, BranchId b, DiffMode mode,
                     const DiffCallback& pos, const DiffCallback& neg) {
  return engine_->Diff(a, b, mode, pos, neg);
}

Status Decibel::Flush() {
  DECIBEL_RETURN_NOT_OK(engine_->Flush());
  std::lock_guard<std::mutex> lock(mu_);
  return PersistGraph();
}

}  // namespace decibel
