#include "core/publisher.h"

#include <utility>
#include <vector>

namespace decibel {

CommitPublisher::~CommitPublisher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

uint64_t CommitPublisher::Subscribe(BranchId branch, CommitListener listener) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t token = next_token_++;
  subs_[token] = Subscription{branch, std::move(listener)};
  EnsureThreadLocked();
  return token;
}

void CommitPublisher::Unsubscribe(uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  subs_.erase(token);
}

void CommitPublisher::Publish(CommitEvent event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool wanted = false;
    for (const auto& [token, sub] : subs_) {
      if (sub.branch == event.branch) {
        wanted = true;
        break;
      }
    }
    if (!wanted) return;  // nobody is watching this branch
    queue_.push_back(std::move(event));
    ++published_;
  }
  cv_.notify_one();
}

void CommitPublisher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  drain_cv_.wait(lock, [this] { return queue_.empty() && !dispatching_; });
}

uint64_t CommitPublisher::num_subscriptions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return subs_.size();
}

uint64_t CommitPublisher::events_published() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

void CommitPublisher::EnsureThreadLocked() {
  if (!dispatcher_.joinable()) {
    dispatcher_ = std::thread([this] { DispatchLoop(); });
  }
}

void CommitPublisher::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;  // stop after draining queued events
      continue;
    }
    const CommitEvent event = std::move(queue_.front());
    queue_.pop_front();
    // Snapshot the matching listeners so callbacks run without mu_ —
    // they may Subscribe/Unsubscribe (a server session resubscribing)
    // without deadlocking. dispatching_ keeps Drain honest meanwhile.
    std::vector<CommitListener> targets;
    for (const auto& [token, sub] : subs_) {
      if (sub.branch == event.branch) targets.push_back(sub.listener);
    }
    dispatching_ = true;
    lock.unlock();
    for (const CommitListener& listener : targets) listener(event);
    lock.lock();
    dispatching_ = false;
    if (queue_.empty()) drain_cv_.notify_all();
  }
}

}  // namespace decibel
