#ifndef DECIBEL_BENCHLIB_WORKLOAD_H_
#define DECIBEL_BENCHLIB_WORKLOAD_H_

/// \file workload.h
/// The versioning benchmark of §4: a YCSB-inspired single-threaded driver
/// that loads a synthetic versioned dataset under one of four branching
/// strategies (deep / flat / science / curation) and then measures the
/// latency of the four query families (§4.3).
///
/// All randomness comes from one seeded generator so every storage engine
/// replays the identical operation stream (§5.6).

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/decibel.h"
#include "query/queries.h"

namespace decibel {
namespace bench {

/// §4.1's four branching strategies.
enum class Strategy { kDeep, kFlat, kScience, kCuration };

const char* StrategyName(Strategy s);

struct WorkloadConfig {
  Strategy strategy = Strategy::kDeep;
  /// Total branches to create (the paper runs 10 / 50 / 100).
  int num_branches = 10;
  /// Insert/update operations charged to each branch. The paper fixes the
  /// total dataset size (100 GB) and divides by branch count; callers can
  /// do the same by setting ops_per_branch = total_ops / num_branches.
  uint64_t ops_per_branch = 1000;
  /// §4.2: "20% updates and 80% inserts by default".
  double update_fraction = 0.2;
  /// §4.2: "create commits at regular intervals (every 10,000
  /// insert/update operations per branch)" — scaled down by default.
  uint64_t commit_every = 500;
  uint64_t seed = 42;

  /// §4.2 loading modes: interleaved (default) scatters operations across
  /// eligible branches; clustered batches each branch's inserts.
  bool clustered_load = false;

  // --- science strategy knobs (§4.1/§4.2)
  /// A branch stops being updated after this many newer branches exist.
  int science_lifetime = 3;
  /// "our evaluation of the scientific strategy favors the mainline
  /// branch with a 2-to-1 skew".
  int science_mainline_skew = 2;
  /// Probability (out of 100) that a new branch forks off mainline rather
  /// than an active working branch.
  int science_mainline_fork_pct = 60;

  // --- curation strategy knobs (§4.1)
  /// Every n-th branch event creates a development branch (the others are
  /// short-lived feature/fix branches).
  int curation_dev_every = 3;
  /// Merge policy used when development/feature branches land.
  MergePolicy merge_policy = MergePolicy::kThreeWayLeft;
};

struct LoadStats {
  double seconds = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t commits = 0;
  uint64_t merges = 0;
  uint64_t bytes_written = 0;  ///< logical record bytes pushed
  /// Merge accounting across the build phase (Table 3 reports merge
  /// throughput "in aggregate across the merge operations performed
  /// during the build phase", §5.4).
  double merge_seconds = 0;
  uint64_t merge_diff_bytes = 0;
  uint64_t merge_conflicts = 0;
};

/// The shape of the loaded version graph, for query-target selection (§5.2
/// picks e.g. "the oldest active science branch" or "a random feature
/// branch").
struct LoadedWorkload {
  WorkloadConfig config;
  LoadStats stats;
  BranchId mainline = kMasterBranch;
  /// Deep: the last branch in the chain.
  BranchId tail = kMasterBranch;
  /// Flat: the children (mainline is the common parent).
  std::vector<BranchId> children;
  /// Science/curation: branches still active at the end of the load, in
  /// creation order (front = oldest).
  std::vector<BranchId> active;
  /// Curation: development vs feature branches (historical union).
  std::vector<BranchId> dev_branches;
  std::vector<BranchId> feature_branches;
};

/// Runs the build phase of the benchmark against \p db.
Result<LoadedWorkload> LoadWorkload(Decibel* db, const WorkloadConfig& config);

// ---------------------------------------------------------------- queries

struct TimedQuery {
  double seconds = 0;
  query::QueryStats stats;
};

/// Each runner drops the engine's caches first (§5 flushes disk caches
/// before each measured operation) and consumes rows without materializing
/// them.
Result<TimedQuery> TimedQ1(Decibel* db, BranchId branch);
Result<TimedQuery> TimedQ2(Decibel* db, BranchId a, BranchId b);
Result<TimedQuery> TimedQ3(Decibel* db, BranchId a, BranchId b);
Result<TimedQuery> TimedQ4(Decibel* db);

/// Query target selection per strategy (§5.2). \p rng drives the random
/// choices the paper makes ("a random child", "the oldest active", ...).
BranchId SelectQ1Target(const LoadedWorkload& w, Random* rng);
std::pair<BranchId, BranchId> SelectQ2Pair(const LoadedWorkload& w,
                                           Random* rng);

/// §5.5: updates every live record of \p branch (new versions of all).
Result<LoadStats> TableWiseUpdate(Decibel* db, BranchId branch);

}  // namespace bench
}  // namespace decibel

#endif  // DECIBEL_BENCHLIB_WORKLOAD_H_
