#include "benchlib/workload.h"

#include <algorithm>
#include <unordered_map>

#include "common/random.h"
#include "common/stopwatch.h"

namespace decibel {
namespace bench {

const char* StrategyName(Strategy s) {
  switch (s) {
    case Strategy::kDeep:
      return "deep";
    case Strategy::kFlat:
      return "flat";
    case Strategy::kScience:
      return "sci";
    case Strategy::kCuration:
      return "cur";
  }
  return "?";
}

namespace {

/// Mutable state of the build phase shared by all strategies.
class Loader {
 public:
  Loader(Decibel* db, const WorkloadConfig& config)
      : db_(db),
        config_(config),
        rng_(config.seed),
        schema_(&db->schema()),
        batch_(schema_) {
    batch_.Reserve(config.commit_every);
  }

  /// One insert-or-update charged to \p branch (§4.2's 80/20 mix). Ops
  /// stage into a per-branch WriteBatch and reach the engine in batched
  /// transactions. Batching is order-preserving: switching to a different
  /// target branch flushes the previous branch's staged run first, so the
  /// physical record interleaving in the engines matches the §4.2 op
  /// stream exactly — clustered loads batch maximally, interleaved loads
  /// degrade to per-op, and the clustered-vs-interleaved comparisons
  /// (fig7) stay meaningful.
  Status Op(BranchId branch) {
    if (branch != batch_branch_) {
      DECIBEL_RETURN_NOT_OK(FlushBatch(batch_branch_));
      batch_branch_ = branch;
    }
    auto& pool = pk_pool_[branch];
    const bool update =
        !pool.empty() && rng_.NextDouble() < config_.update_fraction;
    Record rec(schema_);
    if (update) {
      rec.SetPk(pool[rng_.Uniform(pool.size())]);
      ++stats_.updates;
    } else {
      rec.SetPk(static_cast<int64_t>(next_pk_++));
      pool.push_back(rec.pk());
      ++stats_.inserts;
    }
    FillColumns(&rec);
    if (update) {
      batch_.Update(rec);
    } else {
      batch_.Insert(rec);
    }
    stats_.bytes_written += schema_->record_size();
    if (++ops_since_commit_[branch] >= config_.commit_every) {
      DECIBEL_RETURN_NOT_OK(Commit(branch));
    }
    return Status::OK();
  }

  /// Applies the staged batch as one transaction if it targets \p branch
  /// (the order-preserving flush means only one branch's run is ever
  /// staged). Branch/merge/commit operations must flush first so the
  /// engine sees every op.
  Status FlushBatch(BranchId branch) {
    if (branch != batch_branch_ || batch_.empty()) return Status::OK();
    DECIBEL_RETURN_NOT_OK(db_->ApplyBatch(branch, batch_));
    batch_.Clear();
    return Status::OK();
  }

  Status Commit(BranchId branch) {
    DECIBEL_RETURN_NOT_OK(FlushBatch(branch));
    ops_since_commit_[branch] = 0;
    DECIBEL_RETURN_NOT_OK(db_->CommitBranch(branch).status());
    ++stats_.commits;
    return Status::OK();
  }

  Result<BranchId> NewBranch(const std::string& name, BranchId parent) {
    DECIBEL_RETURN_NOT_OK(FlushBatch(parent));
    Session s = db_->NewSession();
    DECIBEL_RETURN_NOT_OK(db_->Use(&s, parent));
    DECIBEL_ASSIGN_OR_RETURN(BranchId child, db_->Branch(name, &s));
    pk_pool_[child] = pk_pool_[parent];  // inherited keys are updatable
    return child;
  }

  Status Merge(BranchId into, BranchId from) {
    // Commit both heads first so the timer isolates the merge itself.
    DECIBEL_RETURN_NOT_OK(FlushBatch(from));
    DECIBEL_RETURN_NOT_OK(FlushBatch(into));
    DECIBEL_RETURN_NOT_OK(db_->CommitBranch(from).status());
    DECIBEL_RETURN_NOT_OK(db_->CommitBranch(into).status());
    stats_.commits += 2;
    Stopwatch merge_timer;
    DECIBEL_ASSIGN_OR_RETURN(MergeInfo info,
                             db_->Merge(into, from, config_.merge_policy));
    stats_.merge_seconds += merge_timer.ElapsedSeconds();
    stats_.merge_diff_bytes += info.result.diff_bytes;
    stats_.merge_conflicts += info.result.conflicts;
    ++stats_.merges;
    // The merged head adopts 'from's keys for future updates.
    auto& pool = pk_pool_[into];
    const auto& other = pk_pool_[from];
    std::unordered_map<int64_t, bool> seen;
    seen.reserve(pool.size());
    for (int64_t pk : pool) seen[pk] = true;
    for (int64_t pk : other) {
      if (!seen.count(pk)) pool.push_back(pk);
    }
    return Status::OK();
  }

  Random& rng() { return rng_; }
  LoadStats& stats() { return stats_; }

 private:
  void FillColumns(Record* rec) {
    for (size_t c = 1; c < schema_->num_columns(); ++c) {
      switch (schema_->column(c).type) {
        case FieldType::kInt32:
          rec->SetInt32(c, static_cast<int32_t>(rng_.Next()));
          break;
        case FieldType::kInt64:
          rec->SetInt64(c, static_cast<int64_t>(rng_.Next()));
          break;
        case FieldType::kDouble:
          rec->SetDouble(c, rng_.NextDouble());
          break;
        case FieldType::kString: {
          char buf[16];
          snprintf(buf, sizeof(buf), "s%llu",
                   static_cast<unsigned long long>(rng_.Uniform(1 << 20)));
          rec->SetString(c, buf);
          break;
        }
      }
    }
  }

  Decibel* db_;
  const WorkloadConfig& config_;
  Random rng_;
  const Schema* schema_;
  LoadStats stats_;
  uint64_t next_pk_ = 0;
  std::unordered_map<BranchId, std::vector<int64_t>> pk_pool_;
  std::unordered_map<BranchId, uint64_t> ops_since_commit_;
  /// The one staged run of ops (order-preserving batching: a branch
  /// switch flushes before staging continues) and the branch it targets.
  WriteBatch batch_;
  BranchId batch_branch_ = kInvalidBranch;
};

Status LoadDeep(const WorkloadConfig& config, Loader* loader,
                LoadedWorkload* out) {
  // "a single, linear branch chain ... inserts and updates always occur in
  // the branch that was created last" (§4.1).
  BranchId current = kMasterBranch;
  for (int level = 0; level < config.num_branches; ++level) {
    for (uint64_t i = 0; i < config.ops_per_branch; ++i) {
      DECIBEL_RETURN_NOT_OK(loader->Op(current));
    }
    DECIBEL_RETURN_NOT_OK(loader->Commit(current));
    if (level + 1 < config.num_branches) {
      DECIBEL_ASSIGN_OR_RETURN(
          current,
          loader->NewBranch("deep_" + std::to_string(level + 1), current));
    }
  }
  out->tail = current;
  return Status::OK();
}

Status LoadFlat(const WorkloadConfig& config, Loader* loader,
                LoadedWorkload* out) {
  // "creates many child branches from a single initial parent" (§4.1).
  for (uint64_t i = 0; i < config.ops_per_branch; ++i) {
    DECIBEL_RETURN_NOT_OK(loader->Op(kMasterBranch));
  }
  DECIBEL_RETURN_NOT_OK(loader->Commit(kMasterBranch));
  for (int c = 1; c < config.num_branches; ++c) {
    DECIBEL_ASSIGN_OR_RETURN(
        BranchId child,
        loader->NewBranch("flat_" + std::to_string(c), kMasterBranch));
    out->children.push_back(child);
  }
  const uint64_t total =
      config.ops_per_branch * (config.num_branches - 1);
  if (config.clustered_load) {
    // Clustered mode: each child's operations batched together (§4.2).
    for (BranchId child : out->children) {
      for (uint64_t i = 0; i < config.ops_per_branch; ++i) {
        DECIBEL_RETURN_NOT_OK(loader->Op(child));
      }
      DECIBEL_RETURN_NOT_OK(loader->Commit(child));
    }
  } else {
    // Interleaved: "all child branches are selected uniformly at random".
    for (uint64_t i = 0; i < total; ++i) {
      const BranchId child =
          out->children[loader->rng().Uniform(out->children.size())];
      DECIBEL_RETURN_NOT_OK(loader->Op(child));
    }
    for (BranchId child : out->children) {
      DECIBEL_RETURN_NOT_OK(loader->Commit(child));
    }
  }
  return Status::OK();
}

Status LoadScience(Decibel* db, const WorkloadConfig& config, Loader* loader,
                   LoadedWorkload* out) {
  // §4.1: mainline evolves; working branches fork from mainline commits or
  // active branch heads, live for a fixed lifetime, never merge.
  std::vector<BranchId> active;  // working branches, oldest first
  const uint64_t total_ops =
      config.ops_per_branch * static_cast<uint64_t>(config.num_branches);
  const uint64_t branch_interval =
      std::max<uint64_t>(1, total_ops / config.num_branches);
  int created = 1;  // mainline counts toward the branch budget

  for (uint64_t op = 0; op < total_ops; ++op) {
    if (op > 0 && op % branch_interval == 0 &&
        created < config.num_branches) {
      BranchId parent = kMasterBranch;
      if (!active.empty() &&
          static_cast<int>(loader->rng().Uniform(100)) >=
              config.science_mainline_fork_pct) {
        parent = active[loader->rng().Uniform(active.size())];
      }
      DECIBEL_ASSIGN_OR_RETURN(
          BranchId child,
          loader->NewBranch("sci_" + std::to_string(created), parent));
      active.push_back(child);
      ++created;
      // Retire branches past their lifetime (§4.1: "Each branch lives for
      // a fixed lifetime, after which it stops being updated").
      while (active.size() >
             static_cast<size_t>(config.science_lifetime)) {
        DECIBEL_RETURN_NOT_OK(loader->Commit(active.front()));
        const_cast<VersionGraph&>(db->graph()).SetActive(active.front(),
                                                         false);
        out->active.push_back(active.front());  // remember creation order
        active.erase(active.begin());
      }
    }
    // 2:1 skew toward mainline (§4.2).
    const uint64_t weight_total =
        config.science_mainline_skew + active.size();
    const uint64_t pick = loader->rng().Uniform(weight_total);
    const BranchId target =
        pick < static_cast<uint64_t>(config.science_mainline_skew)
            ? kMasterBranch
            : active[pick - config.science_mainline_skew];
    DECIBEL_RETURN_NOT_OK(loader->Op(target));
  }
  DECIBEL_RETURN_NOT_OK(loader->Commit(kMasterBranch));
  for (BranchId b : active) {
    DECIBEL_RETURN_NOT_OK(loader->Commit(b));
  }
  // Final active set = still-active working branches, oldest first.
  out->active = active;
  return Status::OK();
}

Status LoadCuration(Decibel* db, const WorkloadConfig& config, Loader* loader,
                    LoadedWorkload* out) {
  // §4.1: mainline + periodic development branches that merge back, plus
  // short-lived feature/fix branches off mainline or a dev branch.
  struct Live {
    BranchId id;
    BranchId merge_target;
    uint64_t merge_at;  // op index when this branch lands
    bool is_dev;
  };
  std::vector<Live> live;
  const uint64_t total_ops =
      config.ops_per_branch * static_cast<uint64_t>(config.num_branches);
  const uint64_t branch_interval =
      std::max<uint64_t>(1, total_ops / config.num_branches);
  int created = 1;

  for (uint64_t op = 0; op < total_ops; ++op) {
    // Land branches whose time has come.
    for (size_t i = 0; i < live.size();) {
      if (op >= live[i].merge_at) {
        DECIBEL_RETURN_NOT_OK(loader->Commit(live[i].id));
        DECIBEL_RETURN_NOT_OK(loader->Merge(live[i].merge_target,
                                            live[i].id));
        const_cast<VersionGraph&>(db->graph()).SetActive(live[i].id, false);
        live.erase(live.begin() + i);
      } else {
        ++i;
      }
    }
    if (op > 0 && op % branch_interval == 0 &&
        created < config.num_branches) {
      const bool is_dev = created % config.curation_dev_every == 0;
      BranchId parent = kMasterBranch;
      if (!is_dev) {
        // Feature/fix branches fork off mainline or an active dev branch.
        std::vector<BranchId> devs;
        for (const Live& l : live) {
          if (l.is_dev) devs.push_back(l.id);
        }
        if (!devs.empty() && loader->rng().OneIn(2)) {
          parent = devs[loader->rng().Uniform(devs.size())];
        }
      }
      const std::string name =
          std::string(is_dev ? "dev_" : "feat_") + std::to_string(created);
      DECIBEL_ASSIGN_OR_RETURN(BranchId child,
                               loader->NewBranch(name, parent));
      const uint64_t lifetime =
          is_dev ? branch_interval * 2 : branch_interval / 2 + 1;
      live.push_back(Live{child, parent, op + lifetime, is_dev});
      (is_dev ? out->dev_branches : out->feature_branches).push_back(child);
      ++created;
    }
    // "Data modifications are done randomly across the heads of the
    // mainline branch or any of the active ... branches" (§4.1).
    const uint64_t pick = loader->rng().Uniform(live.size() + 1);
    const BranchId target = pick == 0 ? kMasterBranch : live[pick - 1].id;
    DECIBEL_RETURN_NOT_OK(loader->Op(target));
  }
  // Land whatever is still in flight, then remember the survivors.
  DECIBEL_RETURN_NOT_OK(loader->Commit(kMasterBranch));
  for (const Live& l : live) {
    DECIBEL_RETURN_NOT_OK(loader->Commit(l.id));
    out->active.push_back(l.id);
  }
  return Status::OK();
}

}  // namespace

Result<LoadedWorkload> LoadWorkload(Decibel* db,
                                    const WorkloadConfig& config) {
  LoadedWorkload out;
  out.config = config;
  Loader loader(db, config);
  Stopwatch timer;
  Status status;
  switch (config.strategy) {
    case Strategy::kDeep:
      status = LoadDeep(config, &loader, &out);
      break;
    case Strategy::kFlat:
      status = LoadFlat(config, &loader, &out);
      break;
    case Strategy::kScience:
      status = LoadScience(db, config, &loader, &out);
      break;
    case Strategy::kCuration:
      status = LoadCuration(db, config, &loader, &out);
      break;
  }
  DECIBEL_RETURN_NOT_OK(status);
  DECIBEL_RETURN_NOT_OK(db->Flush());
  out.stats = loader.stats();
  out.stats.seconds = timer.ElapsedSeconds();
  return out;
}

// ------------------------------------------------------------------ queries

Result<TimedQuery> TimedQ1(Decibel* db, BranchId branch) {
  db->engine()->DropCaches();
  TimedQuery out;
  Stopwatch timer;
  DECIBEL_ASSIGN_OR_RETURN(
      out.stats, query::ScanVersion(db, branch, Predicate(), nullptr));
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<TimedQuery> TimedQ2(Decibel* db, BranchId a, BranchId b) {
  db->engine()->DropCaches();
  TimedQuery out;
  Stopwatch timer;
  DECIBEL_ASSIGN_OR_RETURN(out.stats, query::PositiveDiff(db, a, b, nullptr));
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<TimedQuery> TimedQ3(Decibel* db, BranchId a, BranchId b) {
  db->engine()->DropCaches();
  TimedQuery out;
  Stopwatch timer;
  // Table 1's Q3 filters one side on a column value; a coarse modulus-like
  // range check keeps the predicate non-selective enough that scans, not
  // the filter, dominate (§5.2 uses "a very non-selective predicate").
  auto predicate = Predicate::Compare(db->schema(), "c1", CompareOp::kNe, 0);
  DECIBEL_RETURN_NOT_OK(predicate.status());
  DECIBEL_ASSIGN_OR_RETURN(out.stats,
                           query::JoinVersions(db, a, b, *predicate,
                                               nullptr));
  out.seconds = timer.ElapsedSeconds();
  return out;
}

Result<TimedQuery> TimedQ4(Decibel* db) {
  db->engine()->DropCaches();
  TimedQuery out;
  Stopwatch timer;
  auto predicate = Predicate::Compare(db->schema(), "c1", CompareOp::kNe, 0);
  DECIBEL_RETURN_NOT_OK(predicate.status());
  DECIBEL_ASSIGN_OR_RETURN(out.stats,
                           query::ScanHeads(db, *predicate, nullptr));
  out.seconds = timer.ElapsedSeconds();
  return out;
}

BranchId SelectQ1Target(const LoadedWorkload& w, Random* rng) {
  switch (w.config.strategy) {
    case Strategy::kDeep:
      return w.tail;  // "we scan the latest active branch, the tail"
    case Strategy::kFlat:
      // "we select a random child" (§5.2).
      return w.children.empty()
                 ? w.mainline
                 : w.children[rng->Uniform(w.children.size())];
    case Strategy::kScience: {
      // mainline / oldest active / youngest active, equal probability.
      if (w.active.empty()) return w.mainline;
      switch (rng->Uniform(3)) {
        case 0:
          return w.mainline;
        case 1:
          return w.active.front();
        default:
          return w.active.back();
      }
    }
    case Strategy::kCuration: {
      // mainline / random active dev / random feature branch.
      const uint64_t pick = rng->Uniform(3);
      if (pick == 0 || (w.dev_branches.empty() && w.feature_branches.empty()))
        return w.mainline;
      if (pick == 1 && !w.dev_branches.empty())
        return w.dev_branches[rng->Uniform(w.dev_branches.size())];
      if (!w.feature_branches.empty())
        return w.feature_branches[rng->Uniform(w.feature_branches.size())];
      return w.mainline;
    }
  }
  return w.mainline;
}

std::pair<BranchId, BranchId> SelectQ2Pair(const LoadedWorkload& w,
                                           Random* rng) {
  switch (w.config.strategy) {
    case Strategy::kDeep: {
      // "diffing a deep tail and its parent" (§5.2).
      return {w.tail, w.tail > 0 ? w.tail - 1 : w.mainline};
    }
    case Strategy::kFlat: {
      const BranchId child =
          w.children.empty() ? w.mainline
                             : w.children[rng->Uniform(w.children.size())];
      return {child, w.mainline};
    }
    case Strategy::kScience: {
      const BranchId oldest =
          w.active.empty() ? w.mainline : w.active.front();
      return {oldest, w.mainline};
    }
    case Strategy::kCuration: {
      const BranchId dev = !w.active.empty()
                               ? w.active.front()
                               : (!w.dev_branches.empty()
                                      ? w.dev_branches.back()
                                      : w.mainline);
      return {w.mainline, dev};
    }
  }
  return {w.mainline, w.mainline};
}

Result<LoadStats> TableWiseUpdate(Decibel* db, BranchId branch) {
  LoadStats stats;
  Stopwatch timer;
  const Schema* schema = &db->schema();
  // Materialize the branch's live records first: updating while scanning
  // would feed the scanner its own appends.
  std::vector<std::string> rows;
  {
    DECIBEL_ASSIGN_OR_RETURN(auto it, db->NewScan(ScanSpec::Branch(branch)));
    ScanRow row;
    while (it->Next(&row)) {
      rows.push_back(row.record.data().ToString());
    }
    DECIBEL_RETURN_NOT_OK(it->status());
  }
  WriteBatch batch(schema);
  batch.Reserve(rows.size());
  for (const std::string& row : rows) {
    Record rec(schema, row);
    // Touch every record: bump the first payload column.
    if (schema->num_columns() > 1 &&
        schema->column(1).type == FieldType::kInt32) {
      rec.SetInt32(1, rec.ref().GetInt32(1) + 1);
    }
    batch.Update(rec);
    ++stats.updates;
    stats.bytes_written += schema->record_size();
  }
  DECIBEL_RETURN_NOT_OK(db->ApplyBatch(branch, batch));
  DECIBEL_RETURN_NOT_OK(db->CommitBranch(branch).status());
  ++stats.commits;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

}  // namespace bench
}  // namespace decibel
