#include "bitmap/bitmap.h"

#include <bit>
#include <cstring>

#include "common/coding.h"

namespace decibel {

namespace {
inline uint64_t WordsFor(uint64_t nbits) { return (nbits + 63) / 64; }
}  // namespace

void Bitmap::Resize(uint64_t nbits) {
  words_.resize(WordsFor(nbits), 0);
  nbits_ = nbits;
  TrimTail();
}

void Bitmap::EnsureBit(uint64_t i) {
  if (i < nbits_) return;
  const uint64_t needed = WordsFor(i + 1);
  if (needed > words_.size()) {
    uint64_t cap = words_.capacity() == 0 ? 4 : words_.capacity();
    while (cap < needed) cap *= 2;
    words_.reserve(cap);
    words_.resize(needed, 0);
  }
  nbits_ = i + 1;
}

void Bitmap::TrimTail() {
  const uint64_t tail_bits = nbits_ & 63;
  if (tail_bits != 0 && !words_.empty()) {
    words_.back() &= (uint64_t{1} << tail_bits) - 1;
  }
}

uint64_t Bitmap::Count() const {
  uint64_t c = 0;
  for (uint64_t w : words_) c += static_cast<uint64_t>(std::popcount(w));
  return c;
}

uint64_t Bitmap::CountPrefix(uint64_t limit) const {
  if (limit >= nbits_) return Count();
  uint64_t c = 0;
  const uint64_t full_words = limit >> 6;
  for (uint64_t i = 0; i < full_words; ++i) {
    c += static_cast<uint64_t>(std::popcount(words_[i]));
  }
  const uint64_t tail = limit & 63;
  if (tail != 0) {
    c += static_cast<uint64_t>(
        std::popcount(words_[full_words] & ((uint64_t{1} << tail) - 1)));
  }
  return c;
}

bool Bitmap::Any() const {
  for (uint64_t w : words_) {
    if (w != 0) return true;
  }
  return false;
}

void Bitmap::OrWith(const Bitmap& other) {
  if (other.nbits_ > nbits_) Resize(other.nbits_);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] |= other.words_[i];
}

void Bitmap::AndWith(const Bitmap& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] &= other.words_[i];
  for (size_t i = common; i < words_.size(); ++i) words_[i] = 0;
}

void Bitmap::XorWith(const Bitmap& other) {
  if (other.nbits_ > nbits_) Resize(other.nbits_);
  for (size_t i = 0; i < other.words_.size(); ++i) words_[i] ^= other.words_[i];
}

void Bitmap::AndNotWith(const Bitmap& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] &= ~other.words_[i];
}

Bitmap Bitmap::Or(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.OrWith(b);
  return r;
}
Bitmap Bitmap::And(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.AndWith(b);
  return r;
}
Bitmap Bitmap::Xor(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.XorWith(b);
  return r;
}
Bitmap Bitmap::AndNot(const Bitmap& a, const Bitmap& b) {
  Bitmap r = a;
  r.AndNotWith(b);
  return r;
}

void Bitmap::ForEachSet(const std::function<void(uint64_t)>& fn) const {
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      fn((static_cast<uint64_t>(wi) << 6) + static_cast<uint64_t>(bit));
      w &= w - 1;
    }
  }
}

uint64_t Bitmap::NextSet(uint64_t from) const {
  if (from >= nbits_) return UINT64_MAX;
  uint64_t wi = from >> 6;
  uint64_t w = words_[wi] & ~((uint64_t{1} << (from & 63)) - 1);
  for (;;) {
    if (w != 0) {
      return (wi << 6) + static_cast<uint64_t>(std::countr_zero(w));
    }
    if (++wi >= words_.size()) return UINT64_MAX;
    w = words_[wi];
  }
}

bool Bitmap::operator==(const Bitmap& other) const {
  // Equality up to zero-extension: trailing zero words are insignificant.
  const size_t common = std::min(words_.size(), other.words_.size());
  // Zero-length memcmp with a null pointer (either bitmap empty) is UB.
  if (common != 0 &&
      memcmp(words_.data(), other.words_.data(), common * 8) != 0) {
    return false;
  }
  for (size_t i = common; i < words_.size(); ++i) {
    if (words_[i] != 0) return false;
  }
  for (size_t i = common; i < other.words_.size(); ++i) {
    if (other.words_[i] != 0) return false;
  }
  return true;
}

std::string Bitmap::ToBytes() const {
  const uint64_t nbytes = (nbits_ + 7) / 8;
  std::string out(nbytes, '\0');
  // An empty bitmap has words_.data() == nullptr; memcpy from a null
  // pointer is UB even for zero bytes.
  if (nbytes != 0) memcpy(out.data(), words_.data(), nbytes);
  return out;
}

Bitmap Bitmap::FromBytes(Slice bytes, uint64_t nbits) {
  Bitmap b;
  b.Resize(nbits);
  const uint64_t n = std::min<uint64_t>(bytes.size(), (nbits + 7) / 8);
  // An empty input Slice carries a null data(); skip the zero-length copy.
  if (n != 0) memcpy(b.words_.data(), bytes.data(), n);
  b.TrimTail();
  return b;
}

void Bitmap::EncodeTo(std::string* dst) const {
  PutVarint64(dst, nbits_);
  const std::string bytes = ToBytes();
  PutLengthPrefixed(dst, bytes);
}

bool Bitmap::DecodeFrom(Slice* input, Bitmap* out) {
  uint64_t nbits;
  Slice bytes;
  if (!GetVarint64(input, &nbits) || !GetLengthPrefixed(input, &bytes)) {
    return false;
  }
  *out = FromBytes(bytes, nbits);
  return true;
}

}  // namespace decibel
