#include "bitmap/commit_history.h"

#include <algorithm>

#include "common/coding.h"
#include "common/crc32.h"
#include "common/rle.h"

namespace decibel {

namespace {

/// XOR of two byte strings, zero-extending the shorter one.
std::string XorBytes(const std::string& a, const std::string& b) {
  const size_t n = std::max(a.size(), b.size());
  std::string out(n, '\0');
  for (size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (size_t i = 0; i < b.size(); ++i) out[i] ^= b[i];
  return out;
}

}  // namespace

Result<std::unique_ptr<CommitHistory>> CommitHistory::Create(
    const std::string& path, const Options& options) {
  std::unique_ptr<CommitHistory> h(new CommitHistory(path, options));
  DECIBEL_ASSIGN_OR_RETURN(WritableFile w, WritableFile::Open(path, true));
  h->writer_.emplace(std::move(w));
  return h;
}

Result<std::unique_ptr<CommitHistory>> CommitHistory::Open(
    const std::string& path, const Options& options) {
  std::unique_ptr<CommitHistory> h(new CommitHistory(path, options));
  DECIBEL_ASSIGN_OR_RETURN(std::string contents, ReadFileToString(path));
  Slice input(contents);
  uint64_t pos = 0;
  while (!input.empty()) {
    const uint8_t layer = static_cast<uint8_t>(input[0]);
    input.RemovePrefix(1);
    uint64_t seq, nbits, len;
    if (!GetVarint64(&input, &seq) || !GetVarint64(&input, &nbits) ||
        !GetVarint64(&input, &len)) {
      return Status::Corruption("commit history: truncated record header in " +
                                path);
    }
    const uint64_t payload_offset =
        contents.size() - input.size();
    if (len + sizeof(uint32_t) > input.size()) {
      return Status::Corruption("commit history: truncated record in " + path);
    }
    Slice payload(input.data(), static_cast<size_t>(len));
    input.RemovePrefix(static_cast<size_t>(len));
    uint32_t crc;
    GetFixed32(&input, &crc);
    if (UnmaskCrc(crc) != Crc32(payload)) {
      return Status::Corruption("commit history: record checksum in " + path);
    }
    Entry e{seq, nbits, payload_offset, static_cast<uint32_t>(len)};
    if (layer == 0) {
      if (!h->layer0_.empty() && seq <= h->layer0_.back().seq) {
        return Status::Corruption("commit history: non-increasing seq in " +
                                  path);
      }
      h->layer0_.push_back(e);
    } else if (layer == 1) {
      h->layer1_.push_back(e);
    } else {
      return Status::Corruption("commit history: bad layer byte in " + path);
    }
    pos = payload_offset + len + sizeof(uint32_t);
  }
  (void)pos;
  DECIBEL_ASSIGN_OR_RETURN(WritableFile w, WritableFile::Open(path, false));
  h->writer_.emplace(std::move(w));
  h->writer_state_valid_ = false;  // last/composite bytes rebuilt lazily
  return h;
}

Status CommitHistory::WriteRecord(uint8_t layer, uint64_t seq, uint64_t nbits,
                                  Slice payload) {
  if (!writer_.has_value()) {
    // Handles were released (retired branch); reopen in append mode.
    DECIBEL_ASSIGN_OR_RETURN(WritableFile w, WritableFile::Open(path_, false));
    writer_.emplace(std::move(w));
    released_ = false;
  }
  std::string header;
  header.push_back(static_cast<char>(layer));
  PutVarint64(&header, seq);
  PutVarint64(&header, nbits);
  PutVarint64(&header, payload.size());

  const uint64_t payload_offset = writer_->Size() + header.size();
  DECIBEL_RETURN_NOT_OK(writer_->Append(header));
  DECIBEL_RETURN_NOT_OK(writer_->Append(payload));
  std::string crc;
  PutFixed32(&crc, MaskCrc(Crc32(payload)));
  DECIBEL_RETURN_NOT_OK(writer_->Append(crc));
  DECIBEL_RETURN_NOT_OK(writer_->Flush());

  Entry e{seq, nbits, payload_offset, static_cast<uint32_t>(payload.size())};
  if (layer == 0) {
    layer0_.push_back(e);
  } else {
    layer1_.push_back(e);
  }
  return Status::OK();
}

Status CommitHistory::AppendCommit(uint64_t seq, const Bitmap& bitmap) {
  std::lock_guard<std::mutex> guard(mu_);
  if (!layer0_.empty() && seq <= layer0_.back().seq) {
    return Status::InvalidArgument(
        "commit history: sequence numbers must increase");
  }
  if (!writer_state_valid_) {
    // First append after reopen: rebuild writer state from disk.
    if (!layer0_.empty()) {
      DECIBEL_RETURN_NOT_OK(ReplayTo(layer0_.size() - 1, &last_bytes_));
      const size_t boundary = layer1_.size() * options_.composite_every;
      composite_base_.clear();
      if (boundary > 0) {
        DECIBEL_RETURN_NOT_OK(ReplayTo(boundary - 1, &composite_base_));
      }
    }
    writer_state_valid_ = true;
  }

  const std::string cur = bitmap.ToBytes();
  std::string payload;
  rle::Encode(XorBytes(last_bytes_, cur), &payload);
  DECIBEL_RETURN_NOT_OK(WriteRecord(0, seq, bitmap.size(), payload));
  last_bytes_ = cur;

  if (layer0_.size() % options_.composite_every == 0) {
    std::string composite;
    rle::Encode(XorBytes(composite_base_, cur), &composite);
    DECIBEL_RETURN_NOT_OK(WriteRecord(1, seq, bitmap.size(), composite));
    composite_base_ = cur;
  }
  return Status::OK();
}

Status CommitHistory::ReadPayload(const Entry& e, std::string* out) const {
  if (!reader_.has_value()) {
    DECIBEL_ASSIGN_OR_RETURN(RandomAccessFile r,
                             RandomAccessFile::Open(path_));
    reader_.emplace(std::move(r));
  }
  return reader_->Read(e.offset, e.length, out);
}

Status CommitHistory::ReplayTo(size_t pos, std::string* bytes) const {
  bytes->clear();
  size_t covered = 0;
  const size_t k = options_.composite_every;
  // Apply composite deltas while they end at or before the target.
  for (size_t i = 0; i < layer1_.size(); ++i) {
    const size_t end = (i + 1) * k;  // covers layer-0 records [0, end)
    if (end > pos + 1) break;
    std::string payload;
    DECIBEL_RETURN_NOT_OK(ReadPayload(layer1_[i], &payload));
    DECIBEL_RETURN_NOT_OK(rle::DecodeXorInto(payload, bytes));
    covered = end;
  }
  // Finish with single-commit deltas.
  for (size_t j = covered; j <= pos; ++j) {
    std::string payload;
    DECIBEL_RETURN_NOT_OK(ReadPayload(layer0_[j], &payload));
    DECIBEL_RETURN_NOT_OK(rle::DecodeXorInto(payload, bytes));
  }
  return Status::OK();
}

Result<Bitmap> CommitHistory::Checkout(uint64_t seq) const {
  std::lock_guard<std::mutex> guard(mu_);
  // Floor lookup: last entry with entry.seq <= seq.
  auto it = std::upper_bound(
      layer0_.begin(), layer0_.end(), seq,
      [](uint64_t s, const Entry& e) { return s < e.seq; });
  if (it == layer0_.begin()) {
    return Status::NotFound("commit history: no commit at or before seq " +
                            std::to_string(seq));
  }
  const size_t pos = static_cast<size_t>(it - layer0_.begin()) - 1;
  std::string bytes;
  Status replayed = ReplayTo(pos, &bytes);
  // Released histories (rolled-away heads, retired branches) are read by
  // every merge that replays an old commit; caching their reader would
  // re-pin one fd per history and grow without bound under branch churn.
  // Keep the reader for the duration of one checkout only.
  if (released_) reader_.reset();
  DECIBEL_RETURN_NOT_OK(replayed);
  return Bitmap::FromBytes(bytes, layer0_[pos].nbits);
}

bool CommitHistory::HasCommitAtOrBefore(uint64_t seq) const {
  std::lock_guard<std::mutex> guard(mu_);
  return !layer0_.empty() && layer0_.front().seq <= seq;
}

uint64_t CommitHistory::SizeBytes() const {
  std::lock_guard<std::mutex> guard(mu_);
  return writer_.has_value() ? writer_->Size() : released_size_;
}

Status CommitHistory::Sync() {
  std::lock_guard<std::mutex> guard(mu_);
  if (writer_.has_value()) return writer_->Sync();
  if (!released_) return Status::OK();
  // Released handles: records were flushed when written, so a transient
  // descriptor suffices to make them durable.
  DECIBEL_ASSIGN_OR_RETURN(WritableFile f, WritableFile::Open(path_, false));
  return f.Sync();
}

Status CommitHistory::ReleaseFileHandles() {
  std::lock_guard<std::mutex> guard(mu_);
  if (writer_.has_value()) {
    released_size_ = writer_->Size();
    DECIBEL_RETURN_NOT_OK(writer_->Close());
    writer_.reset();
    released_ = true;
  }
  reader_.reset();
  return Status::OK();
}

}  // namespace decibel
