#ifndef DECIBEL_BITMAP_BITMAP_H_
#define DECIBEL_BITMAP_BITMAP_H_

/// \file bitmap.h
/// A growable bitmap with the bulk boolean algebra the versioned engines
/// live on (§3.1: "Bitmaps are space-efficient and can be quickly
/// intersected for multi-branch operations").
///
/// All binary operations treat the shorter operand as zero-extended, which
/// is exactly the semantics of a branch bitmap that has not yet seen the
/// newest tuples.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/slice.h"

namespace decibel {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(uint64_t nbits) { Resize(nbits); }

  uint64_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  /// Grows or shrinks to \p nbits; new bits are zero.
  void Resize(uint64_t nbits);

  /// Grows (never shrinks) so that bit \p i is addressable, doubling the
  /// backing array (§3.2's amortized growth).
  void EnsureBit(uint64_t i);

  void Set(uint64_t i) {
    EnsureBit(i);
    words_[i >> 6] |= (uint64_t{1} << (i & 63));
  }
  void Reset(uint64_t i) {
    if (i >= nbits_) return;
    words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  void SetTo(uint64_t i, bool value) {
    if (value) {
      Set(i);
    } else {
      Reset(i);
    }
  }
  bool Test(uint64_t i) const {
    if (i >= nbits_) return false;
    return (words_[i >> 6] >> (i & 63)) & 1;
  }

  /// Number of set bits.
  uint64_t Count() const;
  /// Number of set bits among bits [0, limit).
  uint64_t CountPrefix(uint64_t limit) const;
  bool Any() const;

  /// In-place boolean algebra; the other operand is zero-extended or this
  /// bitmap grows as appropriate.
  void OrWith(const Bitmap& other);
  void AndWith(const Bitmap& other);
  void XorWith(const Bitmap& other);
  void AndNotWith(const Bitmap& other);  ///< this &= ~other

  static Bitmap Or(const Bitmap& a, const Bitmap& b);
  static Bitmap And(const Bitmap& a, const Bitmap& b);
  static Bitmap Xor(const Bitmap& a, const Bitmap& b);
  static Bitmap AndNot(const Bitmap& a, const Bitmap& b);

  /// Calls \p fn for every set bit in ascending order.
  void ForEachSet(const std::function<void(uint64_t)>& fn) const;

  /// Index of the first set bit at or after \p from, or UINT64_MAX.
  uint64_t NextSet(uint64_t from) const;

  bool operator==(const Bitmap& other) const;

  /// Raw little-endian bytes of the bit array (length = ceil(nbits/8)),
  /// used as commit-snapshot input to the RLE delta encoder.
  std::string ToBytes() const;
  static Bitmap FromBytes(Slice bytes, uint64_t nbits);

  /// Serialization with an explicit bit count.
  void EncodeTo(std::string* dst) const;
  static bool DecodeFrom(Slice* input, Bitmap* out);

  /// Heap bytes used by the backing array (for stats/Table 2).
  uint64_t MemoryBytes() const { return words_.capacity() * 8; }

 private:
  void TrimTail();  // clear bits beyond nbits_ in the last word

  std::vector<uint64_t> words_;
  uint64_t nbits_ = 0;
};

}  // namespace decibel

#endif  // DECIBEL_BITMAP_BITMAP_H_
