#ifndef DECIBEL_BITMAP_BITMAP_INDEX_H_
#define DECIBEL_BITMAP_BITMAP_INDEX_H_

/// \file bitmap_index.h
/// The two physical orientations of the tuple x branch liveness matrix
/// (§3.1): branch-oriented (one independently growable bitmap per branch,
/// the layout the paper ultimately evaluates with) and tuple-oriented (one
/// bit-row per tuple inside a single doubling matrix). The tuple-first
/// engine takes either; the hybrid engine uses one branch-oriented index
/// per segment.

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "bitmap/bitmap.h"
#include "common/result.h"

namespace decibel {

/// Which orientation to instantiate (paper §5: "For tuple-first and hybrid,
/// we use a branch-oriented bitmap" by default).
enum class BitmapOrientation { kBranchOriented, kTupleOriented };

/// Liveness matrix: bit (t, b) says tuple t is live in branch b.
class BitmapIndex {
 public:
  virtual ~BitmapIndex() = default;

  /// Registers a branch with an all-zero column. Branch ids are small
  /// dense integers assigned by the engine.
  virtual void AddBranch(uint32_t branch) = 0;

  /// Registers \p child with a copy of \p parent's column — the branch
  /// operation (§3.2: "clones the state of the parent branch's bitmap").
  virtual void CloneBranch(uint32_t parent, uint32_t child) = 0;

  /// Makes tuple indexes [num_tuples, num_tuples + count) addressable.
  virtual void AppendTuples(uint64_t count) = 0;

  /// Makes every tuple index below \p bound addressable (grow-only). The
  /// striped write path uses this instead of AppendTuples: stripes learn
  /// their global index ranges from the heap's extent allocator, so the
  /// universe grows to the allocated bound rather than by a local count.
  virtual void EnsureTuples(uint64_t bound) = 0;

  virtual void Set(uint64_t tuple, uint32_t branch, bool value) = 0;
  virtual bool Test(uint64_t tuple, uint32_t branch) const = 0;

  virtual uint64_t num_tuples() const = 0;

  /// Materializes the column for \p branch. For the branch-oriented layout
  /// this is a copy of one bitmap; for the tuple-oriented layout it walks
  /// the entire matrix — the asymmetry the paper calls out for
  /// single-branch scans (§3.2).
  virtual Bitmap MaterializeBranch(uint32_t branch) const = 0;

  /// Zero-copy view of a branch column if the layout stores one
  /// contiguously (branch-oriented); nullptr otherwise.
  virtual const Bitmap* BranchView(uint32_t /*branch*/) const {
    return nullptr;
  }

  /// Overwrites the column for \p branch (checkout / branch-from-commit).
  virtual void RestoreBranch(uint32_t branch, const Bitmap& bits) = 0;

  virtual void DropBranch(uint32_t branch) = 0;

  virtual uint64_t MemoryBytes() const = 0;
  virtual BitmapOrientation orientation() const = 0;

  /// Persistence for engine reopen.
  virtual void EncodeTo(std::string* dst) const = 0;

  static std::unique_ptr<BitmapIndex> Make(BitmapOrientation orientation);
  static Result<std::unique_ptr<BitmapIndex>> DecodeFrom(Slice* input);
};

/// One bitmap per branch, each in its own block of memory so one branch
/// overflowing only grows that branch's column (§3.1).
class BranchOrientedIndex : public BitmapIndex {
 public:
  BranchOrientedIndex() = default;
  // num_tuples_ is atomic (concurrent stripes grow the universe without a
  // shared lock), which deletes the implicit moves the hybrid engine's
  // by-value Segment::local relies on.
  BranchOrientedIndex(BranchOrientedIndex&& other) noexcept
      : columns_(std::move(other.columns_)),
        num_tuples_(other.num_tuples_.load(std::memory_order_relaxed)) {}
  BranchOrientedIndex& operator=(BranchOrientedIndex&& other) noexcept {
    columns_ = std::move(other.columns_);
    num_tuples_.store(other.num_tuples_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  void AddBranch(uint32_t branch) override;
  void CloneBranch(uint32_t parent, uint32_t child) override;
  void AppendTuples(uint64_t count) override {
    num_tuples_.fetch_add(count, std::memory_order_relaxed);
  }
  void EnsureTuples(uint64_t bound) override {
    uint64_t cur = num_tuples_.load(std::memory_order_relaxed);
    while (cur < bound && !num_tuples_.compare_exchange_weak(
                              cur, bound, std::memory_order_relaxed)) {
    }
  }
  void Set(uint64_t tuple, uint32_t branch, bool value) override;
  bool Test(uint64_t tuple, uint32_t branch) const override;
  uint64_t num_tuples() const override {
    return num_tuples_.load(std::memory_order_relaxed);
  }
  Bitmap MaterializeBranch(uint32_t branch) const override;
  const Bitmap* BranchView(uint32_t branch) const override;
  void RestoreBranch(uint32_t branch, const Bitmap& bits) override;
  void DropBranch(uint32_t branch) override { columns_.erase(branch); }
  uint64_t MemoryBytes() const override;
  BitmapOrientation orientation() const override {
    return BitmapOrientation::kBranchOriented;
  }
  void EncodeTo(std::string* dst) const override;

 private:
  friend class BitmapIndex;
  std::unordered_map<uint32_t, Bitmap> columns_;
  std::atomic<uint64_t> num_tuples_{0};
};

/// All rows in one block of memory, kRowBits bits per tuple, doubling the
/// whole matrix when the branch count outgrows the row width (§3.1-3.2).
class TupleOrientedIndex : public BitmapIndex {
 public:
  void AddBranch(uint32_t branch) override;
  void CloneBranch(uint32_t parent, uint32_t child) override;
  void AppendTuples(uint64_t count) override;
  void EnsureTuples(uint64_t bound) override;
  void Set(uint64_t tuple, uint32_t branch, bool value) override;
  bool Test(uint64_t tuple, uint32_t branch) const override;
  uint64_t num_tuples() const override { return num_tuples_; }
  Bitmap MaterializeBranch(uint32_t branch) const override;
  void RestoreBranch(uint32_t branch, const Bitmap& bits) override;
  void DropBranch(uint32_t branch) override;
  uint64_t MemoryBytes() const override;
  BitmapOrientation orientation() const override {
    return BitmapOrientation::kTupleOriented;
  }
  void EncodeTo(std::string* dst) const override;

 private:
  friend class BitmapIndex;
  void EnsureRowWidth(uint32_t branch);

  uint64_t words_per_row_ = 1;  // row width in 64-bit words
  uint64_t num_tuples_ = 0;
  std::vector<uint64_t> matrix_;  // row-major, num_tuples_ * words_per_row_
};

}  // namespace decibel

#endif  // DECIBEL_BITMAP_BITMAP_INDEX_H_
