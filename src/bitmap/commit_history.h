#ifndef DECIBEL_BITMAP_COMMIT_HISTORY_H_
#define DECIBEL_BITMAP_COMMIT_HISTORY_H_

/// \file commit_history.h
/// On-disk history of a branch's bitmap snapshots (§3.2): each commit is
/// stored as the XOR delta from the previous commit, RLE-compressed. To
/// keep checkout from replaying arbitrarily long delta chains, every
/// kCompositeEvery commits a second-layer *composite* delta (the XOR from
/// the bitmap kCompositeEvery commits earlier) is also written, so a
/// checkout replays O(chain/K + K) deltas. The paper uses exactly two
/// layers; so do we.
///
/// The tuple-first engine keeps one history file per branch; the hybrid
/// engine keeps one per (branch, segment) pair (§5.3, Table 2).
///
/// Record format (append-only file):
///   layer u8 | seq varint | nbits varint | len varint | payload | crc32

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "bitmap/bitmap.h"
#include "common/io.h"
#include "common/result.h"

namespace decibel {

class CommitHistory {
 public:
  struct Options {
    /// Write a composite (layer-1) delta every this many commits.
    uint32_t composite_every = 16;
  };

  /// Creates a new, empty history file (truncates an existing one).
  static Result<std::unique_ptr<CommitHistory>> Create(
      const std::string& path, const Options& options);
  static Result<std::unique_ptr<CommitHistory>> Create(
      const std::string& path) {
    return Create(path, Options{});
  }

  /// Opens an existing history, rebuilding the in-memory record index by
  /// scanning the file.
  static Result<std::unique_ptr<CommitHistory>> Open(const std::string& path,
                                                     const Options& options);
  static Result<std::unique_ptr<CommitHistory>> Open(
      const std::string& path) {
    return Open(path, Options{});
  }

  /// Records the bitmap state at commit \p seq. Sequence numbers must be
  /// strictly increasing. Thread-safe against concurrent Checkout /
  /// HasCommitAtOrBefore / SizeBytes (snapshot readers walk a branch's
  /// history while its owner commits); concurrent AppendCommit calls must
  /// still be serialized by the caller's branch/stripe lock.
  Status AppendCommit(uint64_t seq, const Bitmap& bitmap);

  /// Reconstructs the bitmap at the latest commit whose seq <= \p seq
  /// ("floor" semantics — hybrid segments only write deltas when dirty).
  /// NotFound if there is no such commit.
  Result<Bitmap> Checkout(uint64_t seq) const;

  /// True if some commit with seq' <= seq exists.
  bool HasCommitAtOrBefore(uint64_t seq) const;

  uint64_t num_commits() const {
    std::lock_guard<std::mutex> guard(mu_);
    return layer0_.size();
  }
  /// Compressed on-disk size (Table 2's "Agg. Pack File Size"). Records
  /// are flushed as they are written, so this is also the exact byte
  /// count a checkpoint can truncate the file back to on recovery.
  uint64_t SizeBytes() const;

  /// fdatasyncs the file so every appended record survives a power loss.
  Status Sync();

  /// Closes the writer and reader descriptors without losing any state:
  /// the in-memory index stays, appends lazily reopen the writer, reads
  /// lazily reopen the reader, and Sync() reopens transiently. Used when
  /// a branch is retired so its histories stop pinning fds.
  Status ReleaseFileHandles();

  const std::string& path() const { return path_; }

 private:
  struct Entry {
    uint64_t seq;
    uint64_t nbits;     // bitmap size at this commit
    uint64_t offset;    // payload offset in file
    uint32_t length;    // payload length
  };

  explicit CommitHistory(std::string path, const Options& options)
      : path_(std::move(path)), options_(options) {}

  Status WriteRecord(uint8_t layer, uint64_t seq, uint64_t nbits,
                     Slice payload);
  Status ReadPayload(const Entry& e, std::string* out) const;
  /// Replays deltas to produce the raw bitmap bytes at layer-0 position
  /// \p pos (inclusive).
  Status ReplayTo(size_t pos, std::string* bytes) const;

  const std::string path_;
  const Options options_;

  /// One lock for the whole object: the record indexes, the lazily-opened
  /// reader, and the writer state. Held across the (file-backed) replay a
  /// Checkout performs, which serializes reads of one history — but each
  /// branch (tuple-first) or (branch, segment) pair (hybrid) has its own
  /// history, so only same-branch readers queue here.
  mutable std::mutex mu_;
  std::optional<WritableFile> writer_;
  mutable std::optional<RandomAccessFile> reader_;

  std::vector<Entry> layer0_;
  // layer1_[i] covers layer-0 records [0, (i+1)*composite_every).
  std::vector<Entry> layer1_;

  /// Set while the write handle is released: SizeBytes answers from the
  /// size captured at release, Sync syncs through a transient descriptor.
  uint64_t released_size_ = 0;
  bool released_ = false;

  // Writer state.
  std::string last_bytes_;        // raw bitmap bytes at the last commit
  std::string composite_base_;    // raw bytes at the last composite boundary
  bool writer_state_valid_ = true;
};

}  // namespace decibel

#endif  // DECIBEL_BITMAP_COMMIT_HISTORY_H_
