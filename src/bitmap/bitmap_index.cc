#include "bitmap/bitmap_index.h"

#include "common/coding.h"
#include "common/logging.h"

namespace decibel {

std::unique_ptr<BitmapIndex> BitmapIndex::Make(
    BitmapOrientation orientation) {
  if (orientation == BitmapOrientation::kBranchOriented) {
    return std::make_unique<BranchOrientedIndex>();
  }
  return std::make_unique<TupleOrientedIndex>();
}

// --------------------------------------------------------- branch-oriented

void BranchOrientedIndex::AddBranch(uint32_t branch) {
  columns_.try_emplace(branch);
}

void BranchOrientedIndex::CloneBranch(uint32_t parent, uint32_t child) {
  auto it = columns_.find(parent);
  DECIBEL_DCHECK(it != columns_.end());
  columns_[child] = it->second;  // straightforward memory copy (§3.2)
}

void BranchOrientedIndex::Set(uint64_t tuple, uint32_t branch, bool value) {
  auto it = columns_.find(branch);
  DECIBEL_DCHECK(it != columns_.end());
  it->second.SetTo(tuple, value);
}

bool BranchOrientedIndex::Test(uint64_t tuple, uint32_t branch) const {
  auto it = columns_.find(branch);
  if (it == columns_.end()) return false;
  return it->second.Test(tuple);
}

Bitmap BranchOrientedIndex::MaterializeBranch(uint32_t branch) const {
  auto it = columns_.find(branch);
  if (it == columns_.end()) return Bitmap();
  return it->second;
}

const Bitmap* BranchOrientedIndex::BranchView(uint32_t branch) const {
  auto it = columns_.find(branch);
  return it == columns_.end() ? nullptr : &it->second;
}

void BranchOrientedIndex::RestoreBranch(uint32_t branch, const Bitmap& bits) {
  columns_[branch] = bits;
}

uint64_t BranchOrientedIndex::MemoryBytes() const {
  uint64_t total = 0;
  for (const auto& [id, bm] : columns_) total += bm.MemoryBytes();
  return total;
}

void BranchOrientedIndex::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(BitmapOrientation::kBranchOriented));
  PutVarint64(dst, num_tuples());
  PutVarint64(dst, columns_.size());
  for (const auto& [id, bm] : columns_) {
    PutVarint32(dst, id);
    bm.EncodeTo(dst);
  }
}

// ---------------------------------------------------------- tuple-oriented

void TupleOrientedIndex::EnsureRowWidth(uint32_t branch) {
  const uint64_t needed_bits = static_cast<uint64_t>(branch) + 1;
  if (needed_bits <= words_per_row_ * 64) return;
  // Double the row width and rewrite the whole matrix — the expansion cost
  // the paper attributes to tuple-oriented growth (§3.2).
  uint64_t new_wpr = words_per_row_;
  while (needed_bits > new_wpr * 64) new_wpr *= 2;
  std::vector<uint64_t> wide(num_tuples_ * new_wpr, 0);
  for (uint64_t t = 0; t < num_tuples_; ++t) {
    for (uint64_t w = 0; w < words_per_row_; ++w) {
      wide[t * new_wpr + w] = matrix_[t * words_per_row_ + w];
    }
  }
  matrix_ = std::move(wide);
  words_per_row_ = new_wpr;
}

void TupleOrientedIndex::AddBranch(uint32_t branch) {
  EnsureRowWidth(branch);
}

void TupleOrientedIndex::CloneBranch(uint32_t parent, uint32_t child) {
  EnsureRowWidth(child);
  // Copy one bit in every row: tuple-oriented branching touches the whole
  // matrix (§3.2).
  const uint64_t pw = parent >> 6, pb = parent & 63;
  const uint64_t cw = child >> 6, cb = child & 63;
  for (uint64_t t = 0; t < num_tuples_; ++t) {
    uint64_t* row = &matrix_[t * words_per_row_];
    const uint64_t bit = (row[pw] >> pb) & 1;
    row[cw] = (row[cw] & ~(uint64_t{1} << cb)) | (bit << cb);
  }
}

void TupleOrientedIndex::AppendTuples(uint64_t count) {
  num_tuples_ += count;
  matrix_.resize(num_tuples_ * words_per_row_, 0);
}

void TupleOrientedIndex::EnsureTuples(uint64_t bound) {
  // Callers hold every write stripe (the matrix is physically shared), so
  // a plain grow-to-bound resize is safe here.
  if (bound <= num_tuples_) return;
  num_tuples_ = bound;
  matrix_.resize(num_tuples_ * words_per_row_, 0);
}

void TupleOrientedIndex::Set(uint64_t tuple, uint32_t branch, bool value) {
  DECIBEL_DCHECK(tuple < num_tuples_);
  EnsureRowWidth(branch);
  uint64_t& word = matrix_[tuple * words_per_row_ + (branch >> 6)];
  const uint64_t mask = uint64_t{1} << (branch & 63);
  word = value ? (word | mask) : (word & ~mask);
}

bool TupleOrientedIndex::Test(uint64_t tuple, uint32_t branch) const {
  if (tuple >= num_tuples_ ||
      static_cast<uint64_t>(branch) >= words_per_row_ * 64) {
    return false;
  }
  return (matrix_[tuple * words_per_row_ + (branch >> 6)] >> (branch & 63)) &
         1;
}

Bitmap TupleOrientedIndex::MaterializeBranch(uint32_t branch) const {
  // "the entire bitmap must be scanned" (§3.2).
  Bitmap out(num_tuples_);
  if (static_cast<uint64_t>(branch) >= words_per_row_ * 64) return out;
  const uint64_t bw = branch >> 6, bb = branch & 63;
  for (uint64_t t = 0; t < num_tuples_; ++t) {
    if ((matrix_[t * words_per_row_ + bw] >> bb) & 1) out.Set(t);
  }
  return out;
}

void TupleOrientedIndex::RestoreBranch(uint32_t branch, const Bitmap& bits) {
  EnsureRowWidth(branch);
  for (uint64_t t = 0; t < num_tuples_; ++t) {
    Set(t, branch, bits.Test(t));
  }
}

void TupleOrientedIndex::DropBranch(uint32_t branch) {
  if (static_cast<uint64_t>(branch) >= words_per_row_ * 64) return;
  for (uint64_t t = 0; t < num_tuples_; ++t) Set(t, branch, false);
}

uint64_t TupleOrientedIndex::MemoryBytes() const {
  return matrix_.capacity() * 8;
}

void TupleOrientedIndex::EncodeTo(std::string* dst) const {
  dst->push_back(static_cast<char>(BitmapOrientation::kTupleOriented));
  PutVarint64(dst, num_tuples_);
  PutVarint64(dst, words_per_row_);
  const size_t nbytes = matrix_.size() * 8;
  PutVarint64(dst, nbytes);
  dst->append(reinterpret_cast<const char*>(matrix_.data()), nbytes);
}

// ------------------------------------------------------------ persistence

Result<std::unique_ptr<BitmapIndex>> BitmapIndex::DecodeFrom(Slice* input) {
  if (input->empty()) return Status::Corruption("bitmap index: empty blob");
  const auto orientation = static_cast<BitmapOrientation>((*input)[0]);
  input->RemovePrefix(1);
  if (orientation == BitmapOrientation::kBranchOriented) {
    auto idx = std::make_unique<BranchOrientedIndex>();
    uint64_t num_tuples, num_branches;
    if (!GetVarint64(input, &num_tuples) ||
        !GetVarint64(input, &num_branches)) {
      return Status::Corruption("bitmap index: truncated header");
    }
    idx->num_tuples_.store(num_tuples, std::memory_order_relaxed);
    for (uint64_t i = 0; i < num_branches; ++i) {
      uint32_t id;
      Bitmap bm;
      if (!GetVarint32(input, &id) || !Bitmap::DecodeFrom(input, &bm)) {
        return Status::Corruption("bitmap index: truncated column");
      }
      idx->columns_[id] = std::move(bm);
    }
    return std::unique_ptr<BitmapIndex>(std::move(idx));
  }
  if (orientation == BitmapOrientation::kTupleOriented) {
    auto idx = std::make_unique<TupleOrientedIndex>();
    uint64_t num_tuples, wpr, nbytes;
    if (!GetVarint64(input, &num_tuples) || !GetVarint64(input, &wpr) ||
        !GetVarint64(input, &nbytes) || nbytes > input->size() ||
        nbytes % 8 != 0) {
      return Status::Corruption("bitmap index: truncated matrix");
    }
    idx->num_tuples_ = num_tuples;
    idx->words_per_row_ = wpr;
    idx->matrix_.resize(nbytes / 8);
    // matrix_.data() is null for an empty (zero-tuple) index; memcpy with
    // a null pointer is UB even for zero bytes.
    if (nbytes != 0) memcpy(idx->matrix_.data(), input->data(), nbytes);
    input->RemovePrefix(nbytes);
    // Bound-check before multiplying: a crafted blob with huge num_tuples
    // and wpr could wrap num_tuples * wpr to matrix_.size() and smuggle an
    // undersized matrix past the equality check.
    if ((num_tuples != 0 && wpr > idx->matrix_.size() / num_tuples) ||
        idx->matrix_.size() != num_tuples * wpr) {
      return Status::Corruption("bitmap index: matrix size mismatch");
    }
    return std::unique_ptr<BitmapIndex>(std::move(idx));
  }
  return Status::Corruption("bitmap index: bad orientation byte");
}

}  // namespace decibel
