#ifndef DECIBEL_TXN_LOCK_MANAGER_H_
#define DECIBEL_TXN_LOCK_MANAGER_H_

/// \file lock_manager.h
/// Two-phase locking at branch granularity (§2.2.3: "Concurrent
/// transactions by multiple users on the same version (but different
/// sessions) are isolated from each other through two-phase locking" and
/// "Concurrent commits to a branch are prevented via the use of 2PL").
///
/// Locks are shared (readers) or exclusive (writers/committers). A holder
/// of the sole shared lock may upgrade in place. Acquisition blocks up to
/// a timeout, then fails with Status::Aborted — the caller (the
/// transaction layer) is expected to release everything and retry, which
/// is the classic deadlock-timeout discipline. RAII acquisition/release
/// scopes live in txn/lock_guard.h (LockGuard, LockScope).
///
/// Waiters queue FIFO per branch, each parked on its own condition
/// variable: a release wakes exactly the waiters it grants (one
/// exclusive, or a run of shareds) instead of notify_all'ing every
/// blocked thread, and a stream of later arrivals cannot starve the
/// waiter at the front. Owners that already hold the branch bypass the
/// queue (re-acquisition and the sole-shared upgrade would otherwise
/// deadlock behind their own queue position).
///
/// Owner ids must be unique per concurrent lock holder (re-acquisition by
/// the same owner is a no-op): Decibel hands every transaction and every
/// facade-internal operation a fresh id.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "version/types.h"

namespace decibel {

enum class LockMode { kShared, kExclusive };

class LockManager {
 public:
  explicit LockManager(
      std::chrono::milliseconds timeout = std::chrono::milliseconds(1000))
      : timeout_(timeout) {}

  /// Acquires \p mode on \p branch for \p owner. Re-acquiring a mode
  /// already held is a no-op; a sole shared holder upgrades to exclusive.
  Status Acquire(uint64_t owner, BranchId branch, LockMode mode);

  /// Releases whatever \p owner holds on \p branch.
  void Release(uint64_t owner, BranchId branch);

  /// Releases every lock held by \p owner (end of transaction).
  void ReleaseAll(uint64_t owner);

  /// Introspection for tests.
  bool IsLocked(BranchId branch) const;
  /// Number of owners queued (not yet granted) on \p branch.
  size_t WaitingCount(BranchId branch) const;

 private:
  /// One parked Acquire call; lives on the waiting thread's stack.
  struct Waiter {
    uint64_t owner = 0;
    LockMode mode = LockMode::kShared;
    std::condition_variable cv;
    bool granted = false;
  };

  struct BranchLock {
    std::unordered_set<uint64_t> shared_holders;
    uint64_t exclusive_holder = 0;
    bool has_exclusive = false;
    std::deque<Waiter*> waiters;  ///< FIFO; nodes owned by waiting threads
  };

  bool TryAcquireLocked(uint64_t owner, BranchLock& lock, LockMode mode);
  /// Grants from the front of the queue while compatible: one exclusive
  /// waiter, or a maximal run of shared waiters. Caller holds mu_.
  void GrantFromQueueLocked(BranchLock& lock);
  /// Erases the branch node once it has no holders and no waiters.
  void MaybeEraseLocked(BranchId branch);

  const std::chrono::milliseconds timeout_;
  mutable std::mutex mu_;
  std::unordered_map<BranchId, BranchLock> locks_;
};

}  // namespace decibel

#endif  // DECIBEL_TXN_LOCK_MANAGER_H_
