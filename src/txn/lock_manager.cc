#include "txn/lock_manager.h"

namespace decibel {

bool LockManager::TryAcquireLocked(uint64_t owner, BranchLock& lock,
                                   LockMode mode) {
  if (mode == LockMode::kShared) {
    if (lock.has_exclusive) return lock.exclusive_holder == owner;
    lock.shared_holders.insert(owner);
    return true;
  }
  // Exclusive.
  if (lock.has_exclusive) return lock.exclusive_holder == owner;
  if (lock.shared_holders.empty() ||
      (lock.shared_holders.size() == 1 &&
       lock.shared_holders.count(owner) == 1)) {
    lock.shared_holders.erase(owner);  // upgrade in place
    lock.has_exclusive = true;
    lock.exclusive_holder = owner;
    return true;
  }
  return false;
}

Status LockManager::Acquire(uint64_t owner, BranchId branch, LockMode mode) {
  std::unique_lock<std::mutex> guard(mu_);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  // Re-index locks_ on every attempt: while this thread waits, a releasing
  // thread may erase the branch's node (or an insert may rehash the table),
  // so a BranchLock reference must never be held across cv_.wait_until.
  while (!TryAcquireLocked(owner, locks_[branch], mode)) {
    if (cv_.wait_until(guard, deadline) == std::cv_status::timeout) {
      return Status::Aborted("lock timeout on branch " +
                             std::to_string(branch));
    }
  }
  return Status::OK();
}

void LockManager::Release(uint64_t owner, BranchId branch) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    auto it = locks_.find(branch);
    if (it == locks_.end()) return;
    BranchLock& lock = it->second;
    lock.shared_holders.erase(owner);
    if (lock.has_exclusive && lock.exclusive_holder == owner) {
      lock.has_exclusive = false;
    }
    if (!lock.has_exclusive && lock.shared_holders.empty()) {
      locks_.erase(it);
    }
  }
  cv_.notify_all();
}

void LockManager::ReleaseAll(uint64_t owner) {
  {
    std::lock_guard<std::mutex> guard(mu_);
    for (auto it = locks_.begin(); it != locks_.end();) {
      BranchLock& lock = it->second;
      lock.shared_holders.erase(owner);
      if (lock.has_exclusive && lock.exclusive_holder == owner) {
        lock.has_exclusive = false;
      }
      if (!lock.has_exclusive && lock.shared_holders.empty()) {
        it = locks_.erase(it);
      } else {
        ++it;
      }
    }
  }
  cv_.notify_all();
}

bool LockManager::IsLocked(BranchId branch) const {
  std::lock_guard<std::mutex> guard(mu_);
  return locks_.count(branch) != 0;
}

}  // namespace decibel
