#include "txn/lock_manager.h"

#include <algorithm>

namespace decibel {

bool LockManager::TryAcquireLocked(uint64_t owner, BranchLock& lock,
                                   LockMode mode) {
  if (mode == LockMode::kShared) {
    if (lock.has_exclusive) return lock.exclusive_holder == owner;
    lock.shared_holders.insert(owner);
    return true;
  }
  // Exclusive.
  if (lock.has_exclusive) return lock.exclusive_holder == owner;
  if (lock.shared_holders.empty() ||
      (lock.shared_holders.size() == 1 &&
       lock.shared_holders.count(owner) == 1)) {
    lock.shared_holders.erase(owner);  // upgrade in place
    lock.has_exclusive = true;
    lock.exclusive_holder = owner;
    return true;
  }
  return false;
}

void LockManager::GrantFromQueueLocked(BranchLock& lock) {
  while (!lock.waiters.empty()) {
    Waiter* front = lock.waiters.front();
    if (!TryAcquireLocked(front->owner, lock, front->mode)) break;
    lock.waiters.pop_front();
    front->granted = true;
    front->cv.notify_one();
    if (front->mode == LockMode::kExclusive) break;
  }
}

void LockManager::MaybeEraseLocked(BranchId branch) {
  auto it = locks_.find(branch);
  if (it == locks_.end()) return;
  const BranchLock& lock = it->second;
  if (!lock.has_exclusive && lock.shared_holders.empty() &&
      lock.waiters.empty()) {
    locks_.erase(it);
  }
}

Status LockManager::Acquire(uint64_t owner, BranchId branch, LockMode mode) {
  std::unique_lock<std::mutex> guard(mu_);
  // Element references into unordered_map survive rehashes; only erasure
  // invalidates them, and a node with waiters is never erased, so the
  // reference stays valid across the waits below.
  BranchLock& lock = locks_[branch];
  const bool already_holds =
      lock.shared_holders.count(owner) != 0 ||
      (lock.has_exclusive && lock.exclusive_holder == owner);
  // Fast path: an empty queue, or an owner that already holds the branch
  // (re-acquisition / sole-shared upgrade must not park behind its own
  // queue position). Everyone else joins the FIFO — including new shared
  // requests while an exclusive waiter queues, so writers cannot be
  // starved by a stream of late readers.
  if ((already_holds || lock.waiters.empty()) &&
      TryAcquireLocked(owner, lock, mode)) {
    return Status::OK();
  }
  Waiter self;
  self.owner = owner;
  self.mode = mode;
  lock.waiters.push_back(&self);
  const auto deadline = std::chrono::steady_clock::now() + timeout_;
  while (!self.granted) {
    if (self.cv.wait_until(guard, deadline) == std::cv_status::timeout) {
      if (self.granted) break;  // granted just before the lock re-acquire
      auto it = std::find(lock.waiters.begin(), lock.waiters.end(), &self);
      if (it != lock.waiters.end()) lock.waiters.erase(it);
      // Our departure may unblock the waiters that queued behind us.
      GrantFromQueueLocked(lock);
      MaybeEraseLocked(branch);
      return Status::Aborted("lock timeout on branch " +
                             std::to_string(branch));
    }
  }
  return Status::OK();
}

void LockManager::Release(uint64_t owner, BranchId branch) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(branch);
  if (it == locks_.end()) return;
  BranchLock& lock = it->second;
  lock.shared_holders.erase(owner);
  if (lock.has_exclusive && lock.exclusive_holder == owner) {
    lock.has_exclusive = false;
  }
  GrantFromQueueLocked(lock);
  MaybeEraseLocked(branch);
}

void LockManager::ReleaseAll(uint64_t owner) {
  std::lock_guard<std::mutex> guard(mu_);
  for (auto it = locks_.begin(); it != locks_.end();) {
    BranchLock& lock = it->second;
    lock.shared_holders.erase(owner);
    if (lock.has_exclusive && lock.exclusive_holder == owner) {
      lock.has_exclusive = false;
    }
    GrantFromQueueLocked(lock);
    if (!lock.has_exclusive && lock.shared_holders.empty() &&
        lock.waiters.empty()) {
      it = locks_.erase(it);
    } else {
      ++it;
    }
  }
}

bool LockManager::IsLocked(BranchId branch) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(branch);
  return it != locks_.end() && (it->second.has_exclusive ||
                                !it->second.shared_holders.empty());
}

size_t LockManager::WaitingCount(BranchId branch) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = locks_.find(branch);
  return it == locks_.end() ? 0 : it->second.waiters.size();
}

}  // namespace decibel
