#ifndef DECIBEL_TXN_WRITE_BATCH_H_
#define DECIBEL_TXN_WRITE_BATCH_H_

/// \file write_batch.h
/// WriteBatch: an ordered collection of staged Insert/Update/Delete
/// operations against one branch. Transactions stage their mutations here
/// (§2.2.3: a session's concurrent operations form an isolated unit) and
/// the storage engines consume whole batches via
/// StorageEngine::ApplyBatch, updating their heap file, pk index and
/// bitmaps in one pass instead of once per record.
///
/// Record payloads are packed into a single arena so a 100k-record bulk
/// load stages exactly one heap allocation curve, not 100k Records.

#include <cstdint>
#include <string>
#include <vector>

#include "storage/record.h"
#include "storage/schema.h"

namespace decibel {

class WriteBatch {
 public:
  enum class OpKind : uint8_t { kInsert, kUpdate, kDelete };

  struct Op {
    OpKind kind = OpKind::kInsert;
    /// Delete target (kDelete only).
    int64_t pk = 0;
    /// Arena offset of the record payload (kInsert / kUpdate only).
    uint64_t offset = 0;
  };

  explicit WriteBatch(const Schema* schema) : schema_(schema) {}

  void Insert(const Record& record) { Append(OpKind::kInsert, record); }
  void Update(const Record& record) { Append(OpKind::kUpdate, record); }
  void Delete(int64_t pk) {
    Op op;
    op.kind = OpKind::kDelete;
    op.pk = pk;
    ops_.push_back(op);
  }

  /// Number of staged operations.
  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }
  /// Staged operations that append a record version (inserts + updates) —
  /// what engines grow their heap files and bitmap universes by.
  uint64_t num_appends() const { return num_appends_; }
  /// Staged record-payload bytes.
  uint64_t arena_bytes() const { return arena_.size(); }

  void Clear() {
    ops_.clear();
    arena_.clear();
    num_appends_ = 0;
  }
  void Reserve(size_t num_ops) {
    ops_.reserve(num_ops);
    arena_.reserve(num_ops * schema_->record_size());
  }

  const Schema* schema() const { return schema_; }
  const std::vector<Op>& ops() const { return ops_; }

  /// The packed record payloads of every insert/update, in op order
  /// (deletes stage no payload). Engines feed this straight into
  /// HeapFile::AppendBatch: the n-th append op in ops() owns the n-th
  /// record-sized span of the arena.
  Slice arena() const { return Slice(arena_); }

  /// The staged record of an insert/update op. The view is valid until
  /// the next mutation of the batch.
  RecordRef RecordAt(const Op& op) const {
    DECIBEL_DCHECK(op.kind != OpKind::kDelete);
    return RecordRef(schema_,
                     Slice(arena_.data() + op.offset,
                           schema_->record_size()));
  }

 private:
  void Append(OpKind kind, const Record& record) {
    DECIBEL_DCHECK(record.data().size() == schema_->record_size());
    Op op;
    op.kind = kind;
    op.offset = arena_.size();
    arena_.append(record.data().data(), record.data().size());
    ops_.push_back(op);
    ++num_appends_;
  }

  const Schema* schema_;
  std::vector<Op> ops_;
  std::string arena_;
  uint64_t num_appends_ = 0;
};

}  // namespace decibel

#endif  // DECIBEL_TXN_WRITE_BATCH_H_
