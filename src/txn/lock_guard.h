#ifndef DECIBEL_TXN_LOCK_GUARD_H_
#define DECIBEL_TXN_LOCK_GUARD_H_

/// \file lock_guard.h
/// RAII scopes over LockManager's branch-granularity two-phase locks.
///
/// LockGuard couples acquisition and release of a single branch lock: the
/// only way to obtain a held guard is through the fallible Acquire
/// factory, so a lock can never leak on an early return and never be
/// "released" without having been acquired. LockScope grows a set of
/// branch locks under one owner id and releases them all at once — the
/// shrink phase of strict 2PL for multi-branch operations (merge) and
/// transactions.

#include <utility>

#include "common/result.h"
#include "txn/lock_manager.h"
#include "version/types.h"

namespace decibel {

/// Holds one (owner, branch) lock; releases it on destruction.
class LockGuard {
 public:
  /// Blocks until \p mode is granted on \p branch (or the manager's
  /// deadlock timeout fires, yielding Status::Aborted — the retryable
  /// transaction error).
  static Result<LockGuard> Acquire(LockManager* manager, uint64_t owner,
                                   BranchId branch, LockMode mode) {
    DECIBEL_RETURN_NOT_OK(manager->Acquire(owner, branch, mode));
    return LockGuard(manager, owner, branch);
  }

  LockGuard() = default;
  ~LockGuard() { Release(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  LockGuard(LockGuard&& other) noexcept
      : manager_(std::exchange(other.manager_, nullptr)),
        owner_(other.owner_),
        branch_(other.branch_) {}
  LockGuard& operator=(LockGuard&& other) noexcept {
    if (this != &other) {
      Release();
      manager_ = std::exchange(other.manager_, nullptr);
      owner_ = other.owner_;
      branch_ = other.branch_;
    }
    return *this;
  }

  bool held() const { return manager_ != nullptr; }

  /// Early release; idempotent.
  void Release() {
    if (manager_ != nullptr) {
      manager_->Release(owner_, branch_);
      manager_ = nullptr;
    }
  }

 private:
  LockGuard(LockManager* manager, uint64_t owner, BranchId branch)
      : manager_(manager), owner_(owner), branch_(branch) {}

  LockManager* manager_ = nullptr;
  uint64_t owner_ = 0;
  BranchId branch_ = kInvalidBranch;
};

/// Accumulates branch locks under one owner id; everything acquired
/// through the scope is released together on destruction (or ReleaseAll).
/// The owner id must be unique to this scope — LockManager treats
/// re-acquisition by the same owner as a no-op, so sharing an id between
/// two live scopes would silently break mutual exclusion.
class LockScope {
 public:
  LockScope(LockManager* manager, uint64_t owner)
      : manager_(manager), owner_(owner) {}
  ~LockScope() { ReleaseAll(); }

  LockScope(const LockScope&) = delete;
  LockScope& operator=(const LockScope&) = delete;

  /// Acquires \p mode on \p branch (growth phase). Status::Aborted on
  /// deadlock timeout; the caller should release the whole scope and
  /// retry from the top.
  Status Lock(BranchId branch, LockMode mode) {
    DECIBEL_RETURN_NOT_OK(manager_->Acquire(owner_, branch, mode));
    held_any_ = true;
    return Status::OK();
  }

  /// The shrink phase: drops every lock this owner holds. Idempotent.
  void ReleaseAll() {
    if (held_any_) {
      manager_->ReleaseAll(owner_);
      held_any_ = false;
    }
  }

  uint64_t owner() const { return owner_; }

 private:
  LockManager* manager_;
  uint64_t owner_;
  bool held_any_ = false;
};

}  // namespace decibel

#endif  // DECIBEL_TXN_LOCK_GUARD_H_
