#include "version/version_graph.h"

#include <algorithm>
#include <queue>
#include <unordered_set>

#include "common/coding.h"

namespace decibel {

Result<CommitId> VersionGraph::Init(const std::string& master_name) {
  if (!branches_.empty()) {
    return Status::InvalidArgument("version graph: already initialized");
  }
  BranchInfo master;
  master.id = kMasterBranch;
  master.name = master_name;
  branches_.push_back(master);
  return AddCommitInternal(kMasterBranch, {});
}

Result<CommitId> VersionGraph::AddCommitInternal(
    BranchId branch, std::vector<CommitId> parents) {
  const CommitId id = next_commit_++;
  CommitInfo info;
  info.id = id;
  info.branch = branch;
  info.parents = std::move(parents);
  commits_.emplace(id, std::move(info));
  branches_[branch].head = id;
  return id;
}

Result<BranchId> VersionGraph::CreateBranch(const std::string& name,
                                            CommitId from) {
  auto it = commits_.find(from);
  if (it == commits_.end()) {
    return Status::NotFound("version graph: no commit " +
                            std::to_string(from));
  }
  for (const auto& b : branches_) {
    if (b.name == name) {
      return Status::AlreadyExists("version graph: branch '" + name + "'");
    }
  }
  BranchInfo info;
  info.id = static_cast<BranchId>(branches_.size());
  info.name = name;
  info.base_commit = from;
  info.parent_branch = it->second.branch;
  // The branch starts at its base commit; its first own commit comes with
  // the first modification batch.
  info.head = from;
  branches_.push_back(info);
  return info.id;
}

Result<CommitId> VersionGraph::AddCommit(BranchId branch) {
  if (!HasBranch(branch)) {
    return Status::NotFound("version graph: no branch " +
                            std::to_string(branch));
  }
  return AddCommitInternal(branch, {branches_[branch].head});
}

Result<CommitId> VersionGraph::AddMergeCommit(BranchId into, BranchId from) {
  if (!HasBranch(into) || !HasBranch(from)) {
    return Status::NotFound("version graph: bad branch in merge");
  }
  return AddCommitInternal(into,
                           {branches_[into].head, branches_[from].head});
}

Result<BranchInfo> VersionGraph::GetBranch(BranchId b) const {
  if (!HasBranch(b)) {
    return Status::NotFound("version graph: no branch " + std::to_string(b));
  }
  return branches_[b];
}

Result<CommitInfo> VersionGraph::GetCommit(CommitId c) const {
  auto it = commits_.find(c);
  if (it == commits_.end()) {
    return Status::NotFound("version graph: no commit " + std::to_string(c));
  }
  return it->second;
}

Result<BranchId> VersionGraph::FindBranchByName(
    const std::string& name) const {
  for (const auto& b : branches_) {
    if (b.name == name) return b.id;
  }
  return Status::NotFound("version graph: no branch named '" + name + "'");
}

CommitId VersionGraph::Head(BranchId b) const {
  return HasBranch(b) ? branches_[b].head : kInvalidCommit;
}

bool VersionGraph::IsHead(CommitId c) const {
  for (const auto& b : branches_) {
    if (b.head == c) return true;
  }
  return false;
}

void VersionGraph::SetActive(BranchId b, bool active) {
  if (HasBranch(b)) branches_[b].active = active;
}

std::vector<BranchId> VersionGraph::AllBranches() const {
  std::vector<BranchId> out(branches_.size());
  for (size_t i = 0; i < branches_.size(); ++i) {
    out[i] = static_cast<BranchId>(i);
  }
  return out;
}

std::vector<BranchId> VersionGraph::ActiveBranches() const {
  std::vector<BranchId> out;
  for (const auto& b : branches_) {
    if (b.active) out.push_back(b.id);
  }
  return out;
}

std::vector<CommitId> VersionGraph::Ancestors(CommitId c) const {
  std::vector<CommitId> out;
  std::unordered_set<CommitId> seen;
  std::vector<CommitId> stack{c};
  while (!stack.empty()) {
    const CommitId cur = stack.back();
    stack.pop_back();
    if (!seen.insert(cur).second) continue;
    auto it = commits_.find(cur);
    if (it == commits_.end()) continue;
    out.push_back(cur);
    for (CommitId p : it->second.parents) stack.push_back(p);
  }
  return out;
}

bool VersionGraph::IsAncestor(CommitId maybe_ancestor, CommitId c) const {
  if (maybe_ancestor == c) return true;
  std::unordered_set<CommitId> seen;
  std::vector<CommitId> stack{c};
  while (!stack.empty()) {
    const CommitId cur = stack.back();
    stack.pop_back();
    if (cur == maybe_ancestor) return true;
    // Commit ids increase along edges: prune ancestors older than target.
    if (cur < maybe_ancestor) continue;
    if (!seen.insert(cur).second) continue;
    auto it = commits_.find(cur);
    if (it == commits_.end()) continue;
    for (CommitId p : it->second.parents) stack.push_back(p);
  }
  return false;
}

Result<CommitId> VersionGraph::Lca(CommitId a, CommitId b) const {
  if (!HasCommit(a) || !HasCommit(b)) {
    return Status::NotFound("version graph: bad commit in lca");
  }
  // Ids increase monotonically along edges, so walking both ancestor
  // frontiers in decreasing id order finds the latest common ancestor: a
  // max-heap of the union frontier; the first id reached from both sides
  // is the lca.
  std::priority_queue<CommitId> frontier;
  std::unordered_map<CommitId, uint8_t> reached;  // bit 0: from a, 1: from b
  frontier.push(a);
  reached[a] |= 1;
  frontier.push(b);
  reached[b] |= 2;
  while (!frontier.empty()) {
    const CommitId cur = frontier.top();
    frontier.pop();
    const uint8_t mask = reached[cur];
    if (mask == 3) return cur;
    auto it = commits_.find(cur);
    if (it == commits_.end()) continue;
    for (CommitId p : it->second.parents) {
      uint8_t& pm = reached[p];
      if ((pm | mask) != pm) {
        pm |= mask;
        frontier.push(p);
      }
    }
  }
  return Status::NotFound("version graph: no common ancestor");
}

Status VersionGraph::ReplayCommit(CommitId id, BranchId branch,
                                  const std::vector<CommitId>& parents) {
  if (!HasBranch(branch)) {
    return Status::Corruption("version graph: replayed commit " +
                              std::to_string(id) + " on unknown branch " +
                              std::to_string(branch));
  }
  if (HasCommit(id)) return Status::OK();  // already in the persisted graph
  CommitInfo info;
  info.id = id;
  info.branch = branch;
  info.parents = parents;
  commits_.emplace(id, std::move(info));
  branches_[branch].head = id;
  if (id >= next_commit_) next_commit_ = id + 1;
  return Status::OK();
}

Status VersionGraph::ReplayBranch(BranchId id, const std::string& name,
                                  CommitId base, BranchId parent_branch,
                                  CommitId head) {
  if (HasBranch(id)) return Status::OK();  // already in the persisted graph
  if (id != branches_.size()) {
    return Status::Corruption("version graph: replayed branch " +
                              std::to_string(id) + " leaves a gap (have " +
                              std::to_string(branches_.size()) + ")");
  }
  BranchInfo info;
  info.id = id;
  info.name = name;
  info.base_commit = base;
  info.parent_branch = parent_branch;
  info.head = head;
  branches_.push_back(std::move(info));
  return Status::OK();
}

void VersionGraph::EncodeTo(std::string* dst) const {
  PutVarint64(dst, next_commit_);
  PutVarint64(dst, branches_.size());
  for (const auto& b : branches_) {
    PutLengthPrefixed(dst, b.name);
    PutVarint64(dst, b.base_commit);
    PutVarint32(dst, b.parent_branch);
    PutVarint64(dst, b.head);
    dst->push_back(b.active ? 1 : 0);
  }
  PutVarint64(dst, commits_.size());
  // Commits in id order for deterministic files.
  std::vector<CommitId> ids;
  ids.reserve(commits_.size());
  for (const auto& [id, info] : commits_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  for (CommitId id : ids) {
    const CommitInfo& c = commits_.at(id);
    PutVarint64(dst, c.id);
    PutVarint32(dst, c.branch);
    PutVarint64(dst, c.parents.size());
    for (CommitId p : c.parents) PutVarint64(dst, p);
  }
}

Result<VersionGraph> VersionGraph::DecodeFrom(Slice input) {
  VersionGraph g;
  uint64_t next_commit, num_branches;
  if (!GetVarint64(&input, &next_commit) ||
      !GetVarint64(&input, &num_branches)) {
    return Status::Corruption("version graph: truncated header");
  }
  g.next_commit_ = next_commit;
  for (uint64_t i = 0; i < num_branches; ++i) {
    BranchInfo b;
    Slice name;
    uint64_t base, head;
    if (!GetLengthPrefixed(&input, &name) || !GetVarint64(&input, &base) ||
        !GetVarint32(&input, &b.parent_branch) ||
        !GetVarint64(&input, &head) || input.empty()) {
      return Status::Corruption("version graph: truncated branch");
    }
    b.id = static_cast<BranchId>(i);
    b.name = name.ToString();
    b.base_commit = base;
    b.head = head;
    b.active = input[0] != 0;
    input.RemovePrefix(1);
    g.branches_.push_back(std::move(b));
  }
  uint64_t num_commits;
  if (!GetVarint64(&input, &num_commits)) {
    return Status::Corruption("version graph: truncated commit count");
  }
  for (uint64_t i = 0; i < num_commits; ++i) {
    CommitInfo c;
    uint64_t id, nparents;
    if (!GetVarint64(&input, &id) || !GetVarint32(&input, &c.branch) ||
        !GetVarint64(&input, &nparents)) {
      return Status::Corruption("version graph: truncated commit");
    }
    c.id = id;
    for (uint64_t p = 0; p < nparents; ++p) {
      uint64_t parent;
      if (!GetVarint64(&input, &parent)) {
        return Status::Corruption("version graph: truncated parent list");
      }
      c.parents.push_back(parent);
    }
    g.commits_.emplace(c.id, std::move(c));
  }
  return g;
}

}  // namespace decibel
