#ifndef DECIBEL_VERSION_VERSION_GRAPH_H_
#define DECIBEL_VERSION_VERSION_GRAPH_H_

/// \file version_graph.h
/// The version graph (§2.2.2): a DAG of commits, where each commit belongs
/// to a branch and may have one parent (ordinary commit), zero parents
/// (the init commit), or two parents (a merge commit; first parent has
/// precedence). Branches are named lines of development whose head is
/// their latest commit.
///
/// "we depend on a version graph recording the relationships between the
/// versions being available in memory in all approaches (this graph is
/// updated and persisted on disk as a part of each branch or commit
/// operation)" — §3.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "version/types.h"

namespace decibel {

struct CommitInfo {
  CommitId id = kInvalidCommit;
  BranchId branch = kInvalidBranch;
  /// Parent commits; for merge commits parents[0] is the branch merged
  /// *into* (precedence side by default).
  std::vector<CommitId> parents;
};

struct BranchInfo {
  BranchId id = kInvalidBranch;
  std::string name;
  /// The commit this branch started from (invalid for master).
  CommitId base_commit = kInvalidCommit;
  /// The branch base_commit belonged to (invalid for master).
  BranchId parent_branch = kInvalidBranch;
  CommitId head = kInvalidCommit;
  /// False once retired (the science workload stops updating a branch
  /// after its lifetime, §4.1).
  bool active = true;
};

class VersionGraph {
 public:
  VersionGraph() = default;

  /// Creates the master branch and the init commit (§2.2.3 Init).
  /// Returns the init commit id.
  Result<CommitId> Init(const std::string& master_name = "master");

  /// Creates a branch named \p name from commit \p from (any commit, not
  /// just heads — "a new branch can be made from any commit").
  Result<BranchId> CreateBranch(const std::string& name, CommitId from);

  /// Appends a commit to \p branch and returns its id.
  Result<CommitId> AddCommit(BranchId branch);

  /// Appends a merge commit to \p into whose second parent is the head of
  /// \p from. Returns the new commit.
  Result<CommitId> AddMergeCommit(BranchId into, BranchId from);

  bool HasBranch(BranchId b) const { return b < branches_.size(); }
  bool HasCommit(CommitId c) const { return commits_.count(c) != 0; }

  Result<BranchInfo> GetBranch(BranchId b) const;
  Result<CommitInfo> GetCommit(CommitId c) const;
  Result<BranchId> FindBranchByName(const std::string& name) const;

  CommitId Head(BranchId b) const;
  /// True if \p c is the head of some branch (Table 1 query 4's HEAD()).
  bool IsHead(CommitId c) const;
  void SetActive(BranchId b, bool active);

  size_t num_branches() const { return branches_.size(); }
  size_t num_commits() const { return commits_.size(); }
  const std::vector<BranchInfo>& branches() const { return branches_; }

  /// All branch ids, in creation order.
  std::vector<BranchId> AllBranches() const;
  /// Branches still marked active.
  std::vector<BranchId> ActiveBranches() const;

  /// Lowest common ancestor of two commits: the common ancestor with the
  /// largest commit id (ids increase monotonically along edges, so this is
  /// the "latest" common ancestor, the lca the merge algorithms need,
  /// §3.2/§3.3).
  Result<CommitId> Lca(CommitId a, CommitId b) const;

  /// Every ancestor commit of \p c (including c itself).
  std::vector<CommitId> Ancestors(CommitId c) const;

  /// True if \p maybe_ancestor is an ancestor of (or equal to) \p c.
  bool IsAncestor(CommitId maybe_ancestor, CommitId c) const;

  /// Persistence: the graph is rewritten on every branch/commit operation
  /// in the paper; we expose explicit save/load.
  void EncodeTo(std::string* dst) const;
  static Result<VersionGraph> DecodeFrom(Slice input);

  /// WAL-replay entry points. Unlike AddCommit/CreateBranch these take the
  /// ids the original operation assigned and are idempotent: re-applying a
  /// record whose effect already reached the persisted graph is a no-op,
  /// so recovery may replay from any point at or before the graph's state.

  /// Re-applies a (possibly merge) commit \p id on \p branch.
  Status ReplayCommit(CommitId id, BranchId branch,
                      const std::vector<CommitId>& parents);
  /// Re-applies the creation of branch \p id; \p head is the head the
  /// branch started with (its base commit, or older for BranchAt).
  Status ReplayBranch(BranchId id, const std::string& name, CommitId base,
                      BranchId parent_branch, CommitId head);

 private:
  Result<CommitId> AddCommitInternal(BranchId branch,
                                     std::vector<CommitId> parents);

  std::vector<BranchInfo> branches_;
  std::unordered_map<CommitId, CommitInfo> commits_;
  CommitId next_commit_ = 1;
};

}  // namespace decibel

#endif  // DECIBEL_VERSION_VERSION_GRAPH_H_
