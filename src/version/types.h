#ifndef DECIBEL_VERSION_TYPES_H_
#define DECIBEL_VERSION_TYPES_H_

/// \file types.h
/// Shared identifier types for the versioning machinery.

#include <cstdint>

namespace decibel {

/// Dense small integers assigned in creation order; double as bitmap
/// column ids in the tuple-first and hybrid engines.
using BranchId = uint32_t;

/// Globally unique, strictly increasing commit identifiers; double as the
/// sequence numbers of commit-history records.
using CommitId = uint64_t;

inline constexpr BranchId kInvalidBranch = UINT32_MAX;
inline constexpr CommitId kInvalidCommit = UINT64_MAX;

/// The master branch is always branch 0 (§2.2.2: "The initial branch
/// created is designated the master branch").
inline constexpr BranchId kMasterBranch = 0;

}  // namespace decibel

#endif  // DECIBEL_VERSION_TYPES_H_
