#include "columnar/page_codec.h"

#include <cstring>
#include <string_view>
#include <vector>

#include "common/coding.h"
#include "common/lz.h"
#include "common/rle.h"
#include "storage/record.h"

namespace decibel {
namespace columnar {

namespace {

/// Per-strip encodings inside a kColumnar page. Each strip is one
/// column's values (or the 1-byte record headers) in column-major order,
/// stored as [tag u8][varint stored_len][stored_len bytes].
enum class StripTag : uint8_t {
  kPlain = 0,     ///< width * count bytes verbatim
  kRleValues = 1, ///< repeated [varint run_len][width-byte value]
  kDict = 2,      ///< [varint n][n values][count 1-byte codes], n <= 255
  kByteRle = 3,   ///< rle::Encode of the plain strip bytes
};

constexpr uint64_t kMaxDictEntries = 255;

struct StripSpec {
  uint32_t offset;  // byte offset within each record
  uint32_t width;
};

/// Strip order: record headers first, then one strip per column. The
/// header byte lives at offset 0 and columns never overlap it, so the
/// strips exactly tile the record.
std::vector<StripSpec> MakeStrips(const Schema& schema) {
  std::vector<StripSpec> strips;
  strips.reserve(1 + schema.num_columns());
  strips.push_back({0, 1});
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    strips.push_back({schema.offset(c), schema.column(c).width});
  }
  return strips;
}

void ExtractStrip(const char* payload, uint32_t count, uint32_t record_size,
                  const StripSpec& spec, std::string* out) {
  out->resize(static_cast<size_t>(spec.width) * count);
  char* dst = out->data();
  const char* src = payload + spec.offset;
  for (uint32_t i = 0; i < count; ++i) {
    memcpy(dst, src, spec.width);
    dst += spec.width;
    src += record_size;
  }
}

/// Encodes one strip with the cheapest of the four strip encodings,
/// appending [tag][varint len][bytes] to \p out.
void EncodeStrip(const std::string& plain, uint32_t width, uint32_t count,
                 std::string* out) {
  StripTag tag = StripTag::kPlain;
  std::string best;  // empty means "use plain"

  // Value-RLE: runs of identical width-wide values.
  {
    std::string cand;
    uint32_t i = 0;
    while (i < count) {
      uint32_t run = 1;
      const char* v = plain.data() + static_cast<size_t>(i) * width;
      while (i + run < count &&
             memcmp(v, plain.data() + static_cast<size_t>(i + run) * width,
                    width) == 0) {
        ++run;
      }
      PutVarint32(&cand, run);
      cand.append(v, width);
      i += run;
      if (cand.size() >= plain.size()) break;  // already losing
    }
    if (i == count && cand.size() < plain.size()) {
      tag = StripTag::kRleValues;
      best = std::move(cand);
    }
  }

  // Dictionary: 1-byte codes into a small distinct-value table.
  if (width > 1) {
    std::vector<std::string_view> values;
    std::string codes(count, '\0');
    bool fits = true;
    for (uint32_t i = 0; i < count && fits; ++i) {
      std::string_view v(plain.data() + static_cast<size_t>(i) * width, width);
      size_t code = 0;
      for (; code < values.size(); ++code) {
        if (values[code] == v) break;
      }
      if (code == values.size()) {
        if (values.size() == kMaxDictEntries) {
          fits = false;
          break;
        }
        values.push_back(v);
      }
      codes[i] = static_cast<char>(code);
    }
    if (fits) {
      std::string cand;
      PutVarint32(&cand, static_cast<uint32_t>(values.size()));
      for (std::string_view v : values) cand.append(v.data(), v.size());
      cand.append(codes);
      if (cand.size() < plain.size() && (best.empty() || cand.size() < best.size())) {
        tag = StripTag::kDict;
        best = std::move(cand);
      }
    }
  }

  // Byte-RLE over the raw strip bytes (zero-heavy strips, e.g. headers).
  {
    std::string cand;
    rle::Encode(Slice(plain), &cand);
    if (cand.size() < plain.size() && (best.empty() || cand.size() < best.size())) {
      tag = StripTag::kByteRle;
      best = std::move(cand);
    }
  }

  const std::string& chosen = tag == StripTag::kPlain ? plain : best;
  out->push_back(static_cast<char>(tag));
  PutVarint32(out, static_cast<uint32_t>(chosen.size()));
  out->append(chosen);
}

Status CorruptStrip() { return Status::Corruption("bad columnar strip"); }

/// Decodes one strip back to its plain column-major bytes.
Status DecodeStrip(StripTag tag, Slice stored, uint32_t width, uint32_t count,
                   std::string* plain) {
  const size_t want = static_cast<size_t>(width) * count;
  switch (tag) {
    case StripTag::kPlain:
      if (stored.size() != want) return CorruptStrip();
      plain->assign(stored.data(), stored.size());
      return Status::OK();
    case StripTag::kRleValues: {
      plain->clear();
      plain->reserve(want);
      while (plain->size() < want) {
        uint32_t run;
        if (!GetVarint32(&stored, &run) || run == 0) return CorruptStrip();
        if (stored.size() < width) return CorruptStrip();
        if (plain->size() + static_cast<size_t>(run) * width > want) {
          return CorruptStrip();
        }
        for (uint32_t i = 0; i < run; ++i) plain->append(stored.data(), width);
        stored.RemovePrefix(width);
      }
      if (!stored.empty()) return CorruptStrip();
      return Status::OK();
    }
    case StripTag::kDict: {
      uint32_t n;
      if (!GetVarint32(&stored, &n) || n > kMaxDictEntries) {
        return CorruptStrip();
      }
      if (stored.size() != static_cast<size_t>(n) * width + count) {
        return CorruptStrip();
      }
      const char* table = stored.data();
      const char* codes = table + static_cast<size_t>(n) * width;
      plain->clear();
      plain->reserve(want);
      for (uint32_t i = 0; i < count; ++i) {
        const auto code = static_cast<uint8_t>(codes[i]);
        if (code >= n) return CorruptStrip();
        plain->append(table + static_cast<size_t>(code) * width, width);
      }
      return Status::OK();
    }
    case StripTag::kByteRle: {
      Result<std::string> decoded = rle::Decode(stored);
      if (!decoded.ok()) return decoded.status();
      if (decoded.value().size() != want) return CorruptStrip();
      *plain = std::move(decoded).MoveValueUnsafe();
      return Status::OK();
    }
  }
  return CorruptStrip();
}

/// Evaluates one comparison against a single stored value.
bool EvalValue(const Comparison& cmp, FieldType type, uint32_t width,
               const char* p) {
  switch (type) {
    case FieldType::kInt32: {
      int32_t v;
      memcpy(&v, p, sizeof(v));
      return ApplyCompareOp<int64_t>(cmp.op, v, cmp.int_value);
    }
    case FieldType::kInt64: {
      int64_t v;
      memcpy(&v, p, sizeof(v));
      return ApplyCompareOp<int64_t>(cmp.op, v, cmp.int_value);
    }
    case FieldType::kDouble: {
      double v;
      memcpy(&v, p, sizeof(v));
      return ApplyCompareOp<double>(cmp.op, v, cmp.double_value);
    }
    case FieldType::kString: {
      size_t w = width;
      while (w > 0 && p[w - 1] == '\0') --w;
      return ApplyCompareOp<std::string_view>(cmp.op, std::string_view(p, w),
                                              std::string_view(cmp.string_value));
    }
  }
  return false;
}

/// ANDs one comparison's per-row outcome into \p mask, evaluating on the
/// compressed strip: once per run for RLE, once per distinct value for
/// dictionaries. Returns false on malformed strips.
bool AndCompareIntoMask(StripTag tag, Slice stored, const Comparison& cmp,
                        FieldType type, uint32_t width, uint32_t count,
                        uint8_t* mask) {
  switch (tag) {
    case StripTag::kPlain: {
      if (stored.size() != static_cast<size_t>(width) * count) return false;
      const char* p = stored.data();
      for (uint32_t i = 0; i < count; ++i, p += width) {
        if (mask[i] && !EvalValue(cmp, type, width, p)) mask[i] = 0;
      }
      return true;
    }
    case StripTag::kRleValues: {
      uint32_t pos = 0;
      while (pos < count) {
        uint32_t run;
        if (!GetVarint32(&stored, &run) || run == 0) return false;
        if (stored.size() < width || run > count - pos) return false;
        if (!EvalValue(cmp, type, width, stored.data())) {
          memset(mask + pos, 0, run);
        }
        stored.RemovePrefix(width);
        pos += run;
      }
      return stored.empty();
    }
    case StripTag::kDict: {
      uint32_t n;
      if (!GetVarint32(&stored, &n) || n > kMaxDictEntries) return false;
      if (stored.size() != static_cast<size_t>(n) * width + count) return false;
      bool match[256];
      for (uint32_t d = 0; d < n; ++d) {
        match[d] =
            EvalValue(cmp, type, width, stored.data() + static_cast<size_t>(d) * width);
      }
      const char* codes = stored.data() + static_cast<size_t>(n) * width;
      for (uint32_t i = 0; i < count; ++i) {
        const auto code = static_cast<uint8_t>(codes[i]);
        if (code >= n) return false;
        if (mask[i] && !match[code]) mask[i] = 0;
      }
      return true;
    }
    case StripTag::kByteRle: {
      std::string plain;
      if (!DecodeStrip(StripTag::kByteRle, stored, width, count, &plain).ok()) {
        return false;
      }
      return AndCompareIntoMask(StripTag::kPlain, Slice(plain), cmp, type,
                                width, count, mask);
    }
  }
  return false;
}

struct ParsedStrip {
  StripTag tag;
  Slice stored;
};

bool ParseStrips(Slice input, size_t num_strips,
                 std::vector<ParsedStrip>* strips) {
  strips->clear();
  strips->reserve(num_strips);
  for (size_t s = 0; s < num_strips; ++s) {
    if (input.empty()) return false;
    const auto tag = static_cast<uint8_t>(input[0]);
    if (tag > static_cast<uint8_t>(StripTag::kByteRle)) return false;
    input.RemovePrefix(1);
    Slice bytes;
    if (!GetLengthPrefixed(&input, &bytes)) return false;
    strips->push_back({static_cast<StripTag>(tag), bytes});
  }
  return input.empty();
}

}  // namespace

const char* PageFormatName(PageFormat format) {
  switch (format) {
    case PageFormat::kRaw:
      return "raw";
    case PageFormat::kColumnar:
      return "columnar";
    case PageFormat::kLz:
      return "lz";
  }
  return "unknown";
}

PageFormat EncodePage(const Schema& schema, const char* payload,
                      uint32_t count, std::string* encoded) {
  encoded->clear();
  if (count == 0) return PageFormat::kRaw;
  const uint32_t rs = schema.record_size();
  const size_t raw_size = static_cast<size_t>(rs) * count;

  std::string columnar;
  std::string strip;
  for (const StripSpec& spec : MakeStrips(schema)) {
    ExtractStrip(payload, count, rs, spec, &strip);
    EncodeStrip(strip, spec.width, count, &columnar);
    if (columnar.size() >= raw_size) break;  // already losing to raw
  }

  std::string lzbuf;
  lz::Compress(Slice(payload, raw_size), &lzbuf);

  PageFormat best = PageFormat::kRaw;
  size_t best_size = raw_size;
  if (columnar.size() < best_size) {
    best = PageFormat::kColumnar;
    best_size = columnar.size();
  }
  if (lzbuf.size() < best_size) {
    best = PageFormat::kLz;
  }
  if (best == PageFormat::kColumnar) {
    *encoded = std::move(columnar);
  } else if (best == PageFormat::kLz) {
    *encoded = std::move(lzbuf);
  }
  return best;
}

Status DecodePage(const Schema& schema, PageFormat format, Slice stored,
                  uint32_t count, std::string* payload) {
  const uint32_t rs = schema.record_size();
  const size_t want = static_cast<size_t>(rs) * count;
  switch (format) {
    case PageFormat::kRaw:
      if (stored.size() != want) {
        return Status::Corruption("raw page payload size mismatch");
      }
      payload->append(stored.data(), stored.size());
      return Status::OK();
    case PageFormat::kColumnar: {
      const std::vector<StripSpec> specs = MakeStrips(schema);
      std::vector<ParsedStrip> strips;
      if (!ParseStrips(stored, specs.size(), &strips)) {
        return Status::Corruption("bad columnar page framing");
      }
      const size_t base = payload->size();
      payload->resize(base + want);
      char* rows = payload->data() + base;
      std::string plain;
      for (size_t s = 0; s < specs.size(); ++s) {
        Status st = DecodeStrip(strips[s].tag, strips[s].stored,
                                specs[s].width, count, &plain);
        if (!st.ok()) return st;
        const char* src = plain.data();
        char* dst = rows + specs[s].offset;
        for (uint32_t i = 0; i < count; ++i) {
          memcpy(dst, src, specs[s].width);
          src += specs[s].width;
          dst += rs;
        }
      }
      return Status::OK();
    }
    case PageFormat::kLz: {
      Result<std::string> plain = lz::Decompress(stored);
      if (!plain.ok()) return plain.status();
      if (plain.value().size() != want) {
        return Status::Corruption("lz page payload size mismatch");
      }
      payload->append(plain.value());
      return Status::OK();
    }
  }
  return Status::Corruption("unknown page format");
}

uint64_t CountMatchesCompressed(const Schema& schema, PageFormat format,
                                Slice stored, uint32_t count,
                                const std::vector<Comparison>& cmps,
                                bool* exact) {
  *exact = false;
  if (format != PageFormat::kColumnar) return 0;
  const std::vector<StripSpec> specs = MakeStrips(schema);
  std::vector<ParsedStrip> strips;
  if (!ParseStrips(stored, specs.size(), &strips)) return 0;

  std::vector<uint8_t> mask(count, 1);
  // Exclude tombstones via the header strip (strip 0): a tombstoned
  // version can never be emitted, whatever the predicate says.
  {
    std::string headers;
    if (!DecodeStrip(strips[0].tag, strips[0].stored, 1, count, &headers)
             .ok()) {
      return 0;
    }
    for (uint32_t i = 0; i < count; ++i) {
      if (static_cast<uint8_t>(headers[i]) & kTombstoneFlag) mask[i] = 0;
    }
  }
  for (const Comparison& cmp : cmps) {
    if (cmp.column >= schema.num_columns()) return 0;
    const StripSpec& spec = specs[cmp.column + 1];
    if (!AndCompareIntoMask(strips[cmp.column + 1].tag,
                            strips[cmp.column + 1].stored, cmp,
                            schema.column(cmp.column).type, spec.width, count,
                            mask.data())) {
      return 0;
    }
  }
  uint64_t matches = 0;
  for (uint32_t i = 0; i < count; ++i) matches += mask[i];
  *exact = true;
  return matches;
}

}  // namespace columnar
}  // namespace decibel
