#ifndef DECIBEL_COLUMNAR_SIMD_FILTER_H_
#define DECIBEL_COLUMNAR_SIMD_FILTER_H_

/// \file simd_filter.h
/// Vectorized compare-then-mask over one column of a raw (row-major)
/// page: for n records starting at `base` with `stride` bytes between
/// them, AND each record's comparison outcome into `mask[i]`. This is
/// the batch form of PreparedPredicate::Matches — instead of walking
/// record-by-record, a cursor pins a page, runs one FilterStrided* call
/// per comparison, and then emits only the surviving mask positions.
///
/// AVX2 kernels (strided gather + packed compare) are compiled per-
/// function via the `target("avx2")` attribute when the toolchain
/// supports it (CMake sets DECIBEL_HAVE_AVX2_TARGET), and selected at
/// runtime via cpuid — the build never requires -mavx2 globally, and a
/// scalar fallback always exists. Results are bit-identical between the
/// two paths (integer compares are exact; double compares use ordered
/// semantics matching C's operators on NaN).

#include <cstdint>

#include "query/predicate.h"

namespace decibel {
namespace columnar {

/// True when the AVX2 kernels are compiled in and the CPU supports them
/// (and tests haven't forced the scalar path).
bool SimdEnabled();

/// Test hook: force the scalar fallback regardless of CPU support, so
/// both paths can be compared on the same machine. Not thread-safe —
/// call only from single-threaded test setup.
void ForceScalarForTest(bool force);

/// For i in [0, n): mask[i] &= (value_at(base + i*stride) <op> rhs).
void FilterStridedI32(const char* base, uint32_t stride, uint32_t n,
                      CompareOp op, int32_t rhs, uint8_t* mask);
void FilterStridedI64(const char* base, uint32_t stride, uint32_t n,
                      CompareOp op, int64_t rhs, uint8_t* mask);
void FilterStridedF64(const char* base, uint32_t stride, uint32_t n,
                      CompareOp op, double rhs, uint8_t* mask);

}  // namespace columnar
}  // namespace decibel

#endif  // DECIBEL_COLUMNAR_SIMD_FILTER_H_
