#ifndef DECIBEL_COLUMNAR_PAGE_CODEC_H_
#define DECIBEL_COLUMNAR_PAGE_CODEC_H_

/// \file page_codec.h
/// Adaptive page compression — the encoding layer of the columnar
/// subsystem. A sealed heap page holds `count` fixed-width records in
/// row-major order; the codec decides at seal time how to store them:
///
///   kRaw      row-major payload verbatim (the v1 format, and the tail's
///             only format — the tail is rewritten in place).
///   kColumnar the payload transposed into per-column strips, each strip
///             independently tagged plain / value-RLE / dictionary /
///             byte-RLE (common/rle.cc), smallest wins per strip.
///   kLz       lz::Compress (common/lz.cc) over the whole row-major
///             payload — the fallback for pages whose redundancy is
///             cross-column rather than per-column.
///
/// EncodePage tries kColumnar and kLz and keeps whichever beats raw;
/// incompressible pages stay kRaw so worst-case decode cost is zero.
///
/// kColumnar pages support predicate evaluation *before* decoding:
/// CountMatchesCompressed tests each comparison once per RLE run or
/// dictionary code instead of once per row, so a scan can prove "no row
/// in this page matches" — and skip the decode entirely — from the
/// compressed bytes.

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/slice.h"
#include "query/predicate.h"
#include "storage/schema.h"

namespace decibel {
namespace columnar {

/// On-disk page encoding, stored in the page header's format byte.
enum class PageFormat : uint8_t {
  kRaw = 0,
  kColumnar = 1,
  kLz = 2,
};

const char* PageFormatName(PageFormat format);

/// Encodes \p count records of row-major \p payload. Returns the chosen
/// format; \p encoded holds the stored bytes for kColumnar/kLz and is
/// left empty for kRaw (the caller stores the payload verbatim).
PageFormat EncodePage(const Schema& schema, const char* payload,
                      uint32_t count, std::string* encoded);

/// Reconstructs the row-major payload (`count * record_size` bytes,
/// appended to \p payload) from a page stored as \p format. Fails with
/// Corruption on malformed stored bytes.
Status DecodePage(const Schema& schema, PageFormat format, Slice stored,
                  uint32_t count, std::string* payload);

/// Counts live (non-tombstone) rows satisfying every comparison in
/// \p cmps, evaluated directly on the compressed strips of a kColumnar
/// page. Sets *exact=true when the count is authoritative; for formats
/// without direct evaluation (kRaw, kLz) sets *exact=false and returns 0
/// — the caller must decode and evaluate on raw bytes. A malformed page
/// also reports *exact=false (the decode path will surface Corruption).
uint64_t CountMatchesCompressed(const Schema& schema, PageFormat format,
                                Slice stored, uint32_t count,
                                const std::vector<Comparison>& cmps,
                                bool* exact);

}  // namespace columnar
}  // namespace decibel

#endif  // DECIBEL_COLUMNAR_PAGE_CODEC_H_
