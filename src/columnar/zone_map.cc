#include "columnar/zone_map.h"

#include <algorithm>
#include <cstring>

#include "common/coding.h"

namespace decibel {
namespace columnar {

namespace {

// Bit flags in the encoded header varint.
constexpr uint64_t kHasRowsBit = 1;

inline void FoldI64(ColumnStats* s, int64_t v) {
  if (!s->has_values) {
    s->has_values = true;
    s->min_i64 = s->max_i64 = v;
  } else {
    s->min_i64 = std::min(s->min_i64, v);
    s->max_i64 = std::max(s->max_i64, v);
  }
}

inline void FoldDouble(ColumnStats* s, double v) {
  if (v != v) return;  // NaN never helps a range; MayMatch stays sound
  if (!s->has_values) {
    s->has_values = true;
    s->min_d = s->max_d = v;
  } else {
    s->min_d = std::min(s->min_d, v);
    s->max_d = std::max(s->max_d, v);
  }
}

}  // namespace

void ZoneMap::Update(const Schema& schema, const char* record) {
  if (cols_.size() != schema.num_columns()) cols_.resize(schema.num_columns());

  int64_t pk;
  memcpy(&pk, record + schema.offset(0), sizeof(pk));
  if (rows_ == 0) {
    min_pk_ = max_pk_ = pk;
  } else {
    min_pk_ = std::min(min_pk_, pk);
    max_pk_ = std::max(max_pk_, pk);
  }
  ++rows_;

  const bool tombstone =
      (static_cast<uint8_t>(record[0]) & kTombstoneFlag) != 0;
  if (tombstone) {
    // Tombstone payload columns are zeroed filler, not values: count the
    // key for shadowing analysis but leave the column ranges alone.
    ++tombstones_;
    return;
  }

  for (size_t c = 0; c < schema.num_columns(); ++c) {
    const Column& col = schema.column(c);
    const char* p = record + schema.offset(c);
    switch (col.type) {
      case FieldType::kInt32: {
        int32_t v;
        memcpy(&v, p, sizeof(v));
        FoldI64(&cols_[c], v);
        break;
      }
      case FieldType::kInt64: {
        int64_t v;
        memcpy(&v, p, sizeof(v));
        FoldI64(&cols_[c], v);
        break;
      }
      case FieldType::kDouble: {
        double v;
        memcpy(&v, p, sizeof(v));
        FoldDouble(&cols_[c], v);
        break;
      }
      case FieldType::kString:
        break;  // strings are not summarized
    }
  }
}

void ZoneMap::UpdateBatch(const Schema& schema, const char* records,
                          uint64_t count) {
  const uint32_t rs = schema.record_size();
  for (uint64_t i = 0; i < count; ++i) Update(schema, records + i * rs);
}

void ZoneMap::Merge(const ZoneMap& other) {
  if (other.rows_ == 0) return;
  if (rows_ == 0) {
    *this = other;
    return;
  }
  min_pk_ = std::min(min_pk_, other.min_pk_);
  max_pk_ = std::max(max_pk_, other.max_pk_);
  rows_ += other.rows_;
  tombstones_ += other.tombstones_;
  if (cols_.size() < other.cols_.size()) cols_.resize(other.cols_.size());
  for (size_t c = 0; c < other.cols_.size(); ++c) {
    const ColumnStats& o = other.cols_[c];
    if (!o.has_values) continue;
    ColumnStats& s = cols_[c];
    if (!s.has_values) {
      s = o;
    } else {
      s.min_i64 = std::min(s.min_i64, o.min_i64);
      s.max_i64 = std::max(s.max_i64, o.max_i64);
      s.min_d = std::min(s.min_d, o.min_d);
      s.max_d = std::max(s.max_d, o.max_d);
    }
  }
}

namespace {

// Range test shared by the int and double paths: could any v in
// [min, max] satisfy `v <op> rhs`?
template <typename T>
bool RangeMayMatch(CompareOp op, T min, T max, T rhs) {
  switch (op) {
    case CompareOp::kEq:
      return min <= rhs && rhs <= max;
    case CompareOp::kNe:
      return !(min == rhs && max == rhs);
    case CompareOp::kLt:
      return min < rhs;
    case CompareOp::kLe:
      return min <= rhs;
    case CompareOp::kGt:
      return max > rhs;
    case CompareOp::kGe:
      return max >= rhs;
  }
  return true;
}

}  // namespace

bool ZoneMap::MayMatch(size_t column, FieldType type, CompareOp op,
                       int64_t int_value, double double_value) const {
  if (!has_live_rows()) return false;  // only tombstones: nothing to emit
  if (column >= cols_.size()) return true;
  const ColumnStats& s = cols_[column];
  if (!s.has_values) {
    // No live values folded for this column. If the zone has live rows
    // it can only mean the column type is untracked (string) — answer
    // conservatively.
    return type == FieldType::kString;
  }
  switch (type) {
    case FieldType::kInt32:
    case FieldType::kInt64:
      return RangeMayMatch<int64_t>(op, s.min_i64, s.max_i64, int_value);
    case FieldType::kDouble:
      return RangeMayMatch<double>(op, s.min_d, s.max_d, double_value);
    case FieldType::kString:
      return true;
  }
  return true;
}

bool ZoneMap::PkRangeOverlaps(const ZoneMap& other) const {
  if (rows_ == 0 || other.rows_ == 0) return false;
  return min_pk_ <= other.max_pk_ && other.min_pk_ <= max_pk_;
}

void ZoneMap::EncodeTo(std::string* dst) const {
  uint64_t flags = rows_ > 0 ? kHasRowsBit : 0;
  PutVarint64(dst, flags);
  if (rows_ == 0) return;
  PutVarint64(dst, rows_);
  PutVarint64(dst, tombstones_);
  PutVarint64(dst, ZigZagEncode(min_pk_));
  PutVarint64(dst, ZigZagEncode(max_pk_));
  PutVarint64(dst, cols_.size());
  for (const ColumnStats& s : cols_) {
    PutVarint64(dst, s.has_values ? 1 : 0);
    if (!s.has_values) continue;
    PutVarint64(dst, ZigZagEncode(s.min_i64));
    PutVarint64(dst, ZigZagEncode(s.max_i64));
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double), "double is 64-bit");
    memcpy(&bits, &s.min_d, sizeof(bits));
    PutFixed64(dst, bits);
    memcpy(&bits, &s.max_d, sizeof(bits));
    PutFixed64(dst, bits);
  }
}

Result<ZoneMap> ZoneMap::DecodeFrom(Slice* input) {
  auto corrupt = [] { return Status::Corruption("bad zone map encoding"); };
  uint64_t flags;
  if (!GetVarint64(input, &flags)) return corrupt();
  ZoneMap zm;
  if ((flags & kHasRowsBit) == 0) return zm;
  uint64_t u;
  if (!GetVarint64(input, &zm.rows_)) return corrupt();
  if (zm.rows_ == 0) return corrupt();  // kHasRowsBit promised rows
  if (!GetVarint64(input, &zm.tombstones_)) return corrupt();
  if (zm.tombstones_ > zm.rows_) return corrupt();
  if (!GetVarint64(input, &u)) return corrupt();
  zm.min_pk_ = ZigZagDecode(u);
  if (!GetVarint64(input, &u)) return corrupt();
  zm.max_pk_ = ZigZagDecode(u);
  if (zm.min_pk_ > zm.max_pk_) return corrupt();
  uint64_t ncols;
  if (!GetVarint64(input, &ncols)) return corrupt();
  if (ncols > 1u << 20) return corrupt();
  zm.cols_.resize(ncols);
  for (uint64_t c = 0; c < ncols; ++c) {
    uint64_t has;
    if (!GetVarint64(input, &has)) return corrupt();
    if (has > 1) return corrupt();
    ColumnStats& s = zm.cols_[c];
    s.has_values = has != 0;
    if (!s.has_values) continue;
    if (!GetVarint64(input, &u)) return corrupt();
    s.min_i64 = ZigZagDecode(u);
    if (!GetVarint64(input, &u)) return corrupt();
    s.max_i64 = ZigZagDecode(u);
    if (s.min_i64 > s.max_i64) return corrupt();
    uint64_t bits;
    if (!GetFixed64(input, &bits)) return corrupt();
    memcpy(&s.min_d, &bits, sizeof(bits));
    if (!GetFixed64(input, &bits)) return corrupt();
    memcpy(&s.max_d, &bits, sizeof(bits));
  }
  return zm;
}

}  // namespace columnar
}  // namespace decibel
