#include "columnar/simd_filter.h"

#include <cstring>

#if defined(DECIBEL_HAVE_AVX2_TARGET)
#include <immintrin.h>
#endif

namespace decibel {
namespace columnar {

namespace {

bool g_force_scalar = false;

template <typename T>
void FilterScalar(const char* base, uint32_t stride, uint32_t n, CompareOp op,
                  T rhs, uint8_t* mask) {
  for (uint32_t i = 0; i < n; ++i) {
    if (!mask[i]) continue;
    T v;
    memcpy(&v, base + static_cast<size_t>(i) * stride, sizeof(v));
    if (!ApplyCompareOp<T>(op, v, rhs)) mask[i] = 0;
  }
}

#if defined(DECIBEL_HAVE_AVX2_TARGET)

bool CpuHasAvx2() {
  static const bool has = __builtin_cpu_supports("avx2");
  return has;
}

__attribute__((target("avx2"))) void FilterI32Avx2(const char* base,
                                                   uint32_t stride, uint32_t n,
                                                   CompareOp op, int32_t rhs,
                                                   uint8_t* mask) {
  const __m256i vrhs = _mm256_set1_epi32(rhs);
  const __m256i voff = _mm256_setr_epi32(
      0, static_cast<int>(stride), static_cast<int>(2 * stride),
      static_cast<int>(3 * stride), static_cast<int>(4 * stride),
      static_cast<int>(5 * stride), static_cast<int>(6 * stride),
      static_cast<int>(7 * stride));
  uint32_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v = _mm256_i32gather_epi32(
        reinterpret_cast<const int*>(base + static_cast<size_t>(i) * stride),
        voff, 1);
    uint32_t bits = 0;
    switch (op) {
      case CompareOp::kEq:
        bits = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vrhs))));
        break;
      case CompareOp::kNe:
        bits = ~static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpeq_epi32(v, vrhs))));
        break;
      case CompareOp::kGt:
        bits = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(v, vrhs))));
        break;
      case CompareOp::kLe:
        bits = ~static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(v, vrhs))));
        break;
      case CompareOp::kLt:
        bits = static_cast<uint32_t>(
            _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpgt_epi32(vrhs, v))));
        break;
      case CompareOp::kGe:
        bits = ~static_cast<uint32_t>(_mm256_movemask_ps(
            _mm256_castsi256_ps(_mm256_cmpgt_epi32(vrhs, v))));
        break;
    }
    for (int k = 0; k < 8; ++k) mask[i + k] &= (bits >> k) & 1;
  }
  if (i < n) FilterScalar<int32_t>(base + static_cast<size_t>(i) * stride,
                                   stride, n - i, op, rhs, mask + i);
}

__attribute__((target("avx2"))) void FilterI64Avx2(const char* base,
                                                   uint32_t stride, uint32_t n,
                                                   CompareOp op, int64_t rhs,
                                                   uint8_t* mask) {
  const __m256i vrhs = _mm256_set1_epi64x(rhs);
  const __m256i voff = _mm256_setr_epi64x(0, stride, 2ll * stride, 3ll * stride);
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_i64gather_epi64(
        reinterpret_cast<const long long*>(base +
                                           static_cast<size_t>(i) * stride),
        voff, 1);
    uint32_t bits = 0;
    switch (op) {
      case CompareOp::kEq:
        bits = static_cast<uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vrhs))));
        break;
      case CompareOp::kNe:
        bits = ~static_cast<uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, vrhs))));
        break;
      case CompareOp::kGt:
        bits = static_cast<uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vrhs))));
        break;
      case CompareOp::kLe:
        bits = ~static_cast<uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(v, vrhs))));
        break;
      case CompareOp::kLt:
        bits = static_cast<uint32_t>(
            _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(vrhs, v))));
        break;
      case CompareOp::kGe:
        bits = ~static_cast<uint32_t>(_mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpgt_epi64(vrhs, v))));
        break;
    }
    for (int k = 0; k < 4; ++k) mask[i + k] &= (bits >> k) & 1;
  }
  if (i < n) FilterScalar<int64_t>(base + static_cast<size_t>(i) * stride,
                                   stride, n - i, op, rhs, mask + i);
}

__attribute__((target("avx2"))) void FilterF64Avx2(const char* base,
                                                   uint32_t stride, uint32_t n,
                                                   CompareOp op, double rhs,
                                                   uint8_t* mask) {
  const __m256d vrhs = _mm256_set1_pd(rhs);
  const __m256i voff = _mm256_setr_epi64x(0, stride, 2ll * stride, 3ll * stride);
  uint32_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_i64gather_pd(
        reinterpret_cast<const double*>(base + static_cast<size_t>(i) * stride),
        voff, 1);
    __m256d cmp;
    // Ordered compares (NaN fails) except kNe, where NaN != x is true —
    // exactly C's operator semantics, keeping SIMD and scalar identical.
    switch (op) {
      case CompareOp::kEq:
        cmp = _mm256_cmp_pd(v, vrhs, _CMP_EQ_OQ);
        break;
      case CompareOp::kNe:
        cmp = _mm256_cmp_pd(v, vrhs, _CMP_NEQ_UQ);
        break;
      case CompareOp::kLt:
        cmp = _mm256_cmp_pd(v, vrhs, _CMP_LT_OQ);
        break;
      case CompareOp::kLe:
        cmp = _mm256_cmp_pd(v, vrhs, _CMP_LE_OQ);
        break;
      case CompareOp::kGt:
        cmp = _mm256_cmp_pd(v, vrhs, _CMP_GT_OQ);
        break;
      case CompareOp::kGe:
        cmp = _mm256_cmp_pd(v, vrhs, _CMP_GE_OQ);
        break;
      default:
        cmp = _mm256_setzero_pd();
        break;
    }
    const auto bits = static_cast<uint32_t>(_mm256_movemask_pd(cmp));
    for (int k = 0; k < 4; ++k) mask[i + k] &= (bits >> k) & 1;
  }
  if (i < n) FilterScalar<double>(base + static_cast<size_t>(i) * stride,
                                  stride, n - i, op, rhs, mask + i);
}

#endif  // DECIBEL_HAVE_AVX2_TARGET

}  // namespace

bool SimdEnabled() {
#if defined(DECIBEL_HAVE_AVX2_TARGET)
  return !g_force_scalar && CpuHasAvx2();
#else
  return false;
#endif
}

void ForceScalarForTest(bool force) { g_force_scalar = force; }

void FilterStridedI32(const char* base, uint32_t stride, uint32_t n,
                      CompareOp op, int32_t rhs, uint8_t* mask) {
#if defined(DECIBEL_HAVE_AVX2_TARGET)
  if (SimdEnabled()) {
    FilterI32Avx2(base, stride, n, op, rhs, mask);
    return;
  }
#endif
  FilterScalar<int32_t>(base, stride, n, op, rhs, mask);
}

void FilterStridedI64(const char* base, uint32_t stride, uint32_t n,
                      CompareOp op, int64_t rhs, uint8_t* mask) {
#if defined(DECIBEL_HAVE_AVX2_TARGET)
  if (SimdEnabled()) {
    FilterI64Avx2(base, stride, n, op, rhs, mask);
    return;
  }
#endif
  FilterScalar<int64_t>(base, stride, n, op, rhs, mask);
}

void FilterStridedF64(const char* base, uint32_t stride, uint32_t n,
                      CompareOp op, double rhs, uint8_t* mask) {
#if defined(DECIBEL_HAVE_AVX2_TARGET)
  if (SimdEnabled()) {
    FilterF64Avx2(base, stride, n, op, rhs, mask);
    return;
  }
#endif
  FilterScalar<double>(base, stride, n, op, rhs, mask);
}

}  // namespace columnar
}  // namespace decibel
