#ifndef DECIBEL_COLUMNAR_ZONE_MAP_H_
#define DECIBEL_COLUMNAR_ZONE_MAP_H_

/// \file zone_map.h
/// Per-zone column statistics — the skipping layer of the columnar
/// subsystem. A ZoneMap summarizes one contiguous run of records (a heap
/// page, a segment file, or a file's mutable tail): per-column min/max for
/// the numeric columns, the primary-key range, the record count and the
/// tombstone count. Scans test a pushed-down comparison against the zone
/// before touching bytes: MayMatch() == false proves no live record in
/// the zone satisfies it, so the whole zone is skipped (OrpheusDB-style
/// partition pruning applied to Decibel's versioned segments).
///
/// Semantics under versioning:
///  - Tombstones count toward rows()/tombstones() and toward the pk
///    range (a tombstone's key still shadows older versions), but their
///    zeroed payload columns are EXCLUDED from the column min/max — a
///    delete never widens a value range.
///  - Zones are monotone supersets: updates append new versions, deletes
///    append tombstones, nothing ever shrinks a range. A zone map loaded
///    from a checkpoint therefore stays valid for every record it covered.
///  - String columns are not summarized (MayMatch returns true for them).

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/slice.h"
#include "query/predicate.h"
#include "storage/schema.h"

namespace decibel {
namespace columnar {

/// Min/max summary of one numeric column within a zone.
struct ColumnStats {
  bool has_values = false;  ///< any live (non-tombstone) value recorded
  int64_t min_i64 = 0;
  int64_t max_i64 = 0;
  double min_d = 0;
  double max_d = 0;
};

class ZoneMap {
 public:
  ZoneMap() = default;
  explicit ZoneMap(size_t num_columns) : cols_(num_columns) {}

  /// Folds one serialized record (header + columns) into the zone.
  void Update(const Schema& schema, const char* record);

  /// Folds \p count packed records into the zone.
  void UpdateBatch(const Schema& schema, const char* records, uint64_t count);

  /// Widens this zone to also cover \p other.
  void Merge(const ZoneMap& other);

  uint64_t rows() const { return rows_; }
  uint64_t tombstones() const { return tombstones_; }
  /// True when the zone holds at least one live (non-tombstone) record.
  bool has_live_rows() const { return rows_ > tombstones_; }
  int64_t min_pk() const { return min_pk_; }
  int64_t max_pk() const { return max_pk_; }
  const ColumnStats& column(size_t i) const { return cols_[i]; }
  size_t num_columns() const { return cols_.size(); }

  /// Could any live record in this zone satisfy `column <op> value`?
  /// Conservative: unknown columns (strings, zones built before the
  /// column existed) answer true. A zone with no live rows answers false
  /// — nothing in it can be emitted.
  bool MayMatch(size_t column, FieldType type, CompareOp op, int64_t int_value,
                double double_value) const;

  /// True when [min_pk, max_pk] intersects \p other's pk range (both
  /// zones non-empty). Tombstone keys count: the test is used to prove a
  /// zone cannot shadow — or be shadowed by — records elsewhere.
  bool PkRangeOverlaps(const ZoneMap& other) const;

  void EncodeTo(std::string* dst) const;
  static Result<ZoneMap> DecodeFrom(Slice* input);

 private:
  uint64_t rows_ = 0;
  uint64_t tombstones_ = 0;
  int64_t min_pk_ = 0;
  int64_t max_pk_ = 0;
  std::vector<ColumnStats> cols_;
};

}  // namespace columnar
}  // namespace decibel

#endif  // DECIBEL_COLUMNAR_ZONE_MAP_H_
